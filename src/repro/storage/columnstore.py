"""Columnar replica store (the TiFlash analogue).

The columnar store is kept consistent with the row store through
*asynchronous log replication*: ``apply_from(wal)`` consumes WAL records past
the replica's watermark and applies them to per-column arrays.  Readers see
data as of the replica's ``applied_ts`` — fresher replication means fresher
analytics, which is exactly the mechanism TiDB relies on in the paper.

Storage is organised the way real columnar engines (TiFlash, SingleStore's
columnstore) organise it: fixed-size *segments* of column arrays, each with

* a **live bitmap** (deletes only clear a bit; slots are reused when the
  same primary key is reinserted),
* per-column **zone maps** (min/max over every value ever written to the
  segment — widen-only, so they stay a conservative superset of the live
  values and pruning can never drop a matching row),
* a **physical encoding** per column, chosen when the segment fills up
  (*seals*): ``DICT`` (low-cardinality strings -> int codes + per-segment
  dictionary), ``RLE`` (long constant runs -> (value, length) pairs),
  ``NATIVE`` (homogeneous ints/floats -> ``array('q')``/``array('d')``
  typed arrays with a null set), falling back to ``PLAIN`` object lists.

Tables come in two physical organisations:

* **arrival order** (``sorted_compaction=False``): segments fill in WAL
  apply order, seal when full, and in-place overwrites demote a sealed
  segment back to PLAIN until ``compact()`` re-encodes it — the PR 4
  engine, kept byte-for-byte as the A/B baseline;
* **delta–main** (``sorted_compaction=True``): WAL records apply into
  unsorted *plain delta* tail segments (replication semantics unchanged),
  while ``compact()`` merges delta rows with the existing main rows into
  *main* segments kept globally ordered on the table's **sort key**
  (default: the primary key) — TiFlash's delta-tree merge.  Ordering
  lengthens RLE runs, makes zone maps disjoint, and lets range predicates
  on a sort-key prefix bind a *contiguous segment span* located by binary
  search (``main_span``) instead of checking every zone map.  Updates of
  main rows kill the old slot and append the new version to the delta, so
  main segments stay immutable (and encoded) between merges; scans are
  merge-on-read over main plus the small delta overlay.

WAL records always apply into *unencoded* tail segments (replication
semantics are unchanged); an in-place overwrite of a sealed segment demotes
it back to PLAIN, and ``compact()`` re-encodes demoted segments.  Encoded
columns implement the sequence protocol, so every reader that iterates or
indexes a column slice works unchanged — but they also expose code-space
selection primitives (``select_eq``/``select_range``/``select_in``) and run
iteration (``iter_runs``) that the vectorized executor uses to filter and
aggregate *without decoding*.

``scan_batches`` exposes the segments as column-slice batches for the
vectorized executor; ``scan`` keeps the row-tuple view for the row pipeline.
Columnar tables support full scans only (no secondary indexes): point
lookups stay on the row store, as in TiDB.
"""

from __future__ import annotations

import heapq
import threading
from array import array
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from collections.abc import Iterator

from repro.catalog.schema import Table
from repro.catalog.types import VarcharType
from repro.errors import CatalogError
from repro.sql.ordering import canonical_key_of
from repro.sql.result import Batch
from repro.storage.partition import PartitionMap
from repro.storage.wal import LogOp, WriteAheadLog

SEGMENT_ROWS = 4096

# encoding choice thresholds (see _encode_column): a column whose average
# run is this long is better off run-length encoded than typed-array
# encoded, even for numerics
RLE_MIN_AVG_RUN = 32
# fallback RLE threshold for columns that qualify for no other encoding
RLE_FALLBACK_AVG_RUN = 8
# dictionary encoding only pays while the dictionary stays small relative
# to the segment
DICT_MAX_CARDINALITY = 256
# table-level shared dictionaries cover whole columns, so their cap is
# proportionally larger; a column that exceeds it is *demoted* back to
# per-segment encoding choices
SHARED_DICT_MAX_CARDINALITY = 4096

# default LRU budget for cached per-segment aggregate partials (sketches)
SKETCH_BUDGET_BYTES = 32 << 20

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class Encoding:
    """Physical encodings of one sealed segment column."""

    PLAIN = "plain"
    DICT = "dict"
    RLE = "rle"
    NATIVE = "native"


def _approx_value_bytes(value) -> int:
    """Deterministic per-value heap estimate (CPython-shaped, not exact)."""
    if value is None:
        return 8          # pointer to the shared None
    if isinstance(value, float):
        return 24
    if isinstance(value, int):
        return 28
    if isinstance(value, str):
        return 49 + len(value)
    return 48


def _plain_bytes(values) -> int:
    """Approximate footprint of a plain object-list column."""
    return 56 + 8 * len(values) + sum(_approx_value_bytes(v) for v in values)


class TableDictionary:
    """One shared value<->code map covering a whole column *domain*.

    Installed per DICT-eligible (string) column when the replica runs with
    ``shared_dicts=True``; FK columns alias the referenced column's
    dictionary so both sides of a PK/FK join live in one code space.
    Append-only: codes, once handed out, never change — sealed segments
    referencing the dictionary stay valid forever.  When the domain's
    cardinality exceeds ``cap`` the dictionary *demotes* (``active`` goes
    False): future seals fall back to per-segment encoding choices while
    already-sealed shared columns keep decoding through the (frozen-enough)
    value list.
    """

    __slots__ = ("values", "code_of", "cap", "active", "referenced",
                 "_lock")

    def __init__(self, cap: int = SHARED_DICT_MAX_CARDINALITY):
        self.values: list = []
        self.code_of: dict = {}
        self.cap = cap
        self.active = True
        # True once any sealed column/remap references the value list; a
        # dictionary demoted before that can free its dead values
        self.referenced = False
        # protects value/code appends only; reads (lookup) ride on the
        # atomicity of dict.get against an append-only dict
        self._lock = threading.Lock()

    def _demote_locked(self):
        self.active = False
        if not self.referenced:
            # nothing ever sealed against this dictionary (the very first
            # column slice blew the cap): drop the dead values
            self.values.clear()
            self.code_of.clear()

    def __len__(self) -> int:
        return len(self.values)

    def lookup(self, value):
        """Global code of ``value`` (None when absent or unhashable)."""
        try:
            return self.code_of.get(value)
        except TypeError:
            return None

    def encode(self, values: list) -> array | None:
        """Encode a sealed column slice into global codes.

        Unseen values are appended to the dictionary; ``None`` means the
        table-level cap was exceeded — the dictionary demotes and the
        caller falls back to per-segment encoding.
        """
        with self._lock:
            if not self.active:
                return None
            code_of = self.code_of
            dictionary = self.values
            codes = array("i")
            append = codes.append
            for value in values:
                if value is None:
                    append(-1)
                    continue
                code = code_of.get(value)
                if code is None:
                    if len(dictionary) >= self.cap:
                        self._demote_locked()
                        return None
                    code = code_of[value] = len(dictionary)
                    dictionary.append(value)
                append(code)
            self.referenced = True
            return codes

    def remap(self, values: list) -> list | None:
        """Per-segment-code -> global-code array for a segment dictionary.

        Bridges segments sealed before the shared dictionary existed (or
        outside compaction) into the global code space; unseen values are
        appended.  ``None`` when the dictionary demoted — the caller stays
        in segment code space.
        """
        with self._lock:
            if not self.active:
                return None
            code_of = self.code_of
            dictionary = self.values
            out = []
            for value in values:
                code = code_of.get(value)
                if code is None:
                    if len(dictionary) >= self.cap:
                        self._demote_locked()
                        return None
                    code = code_of[value] = len(dictionary)
                    dictionary.append(value)
                out.append(code)
            self.referenced = True
            return out


class DictColumn:
    """Dictionary-encoded column: int codes + a per-segment dictionary.

    ``codes[i]`` indexes ``values``; ``-1`` encodes NULL.  Equality/IN
    predicates translate the literal to a code once (``code_for``) and
    compare ints; a literal absent from the dictionary proves the whole
    segment predicate-free (*dictionary membership check*).

    ``shared`` (optional) points at the table-level ``TableDictionary`` of
    the column's domain: ``shared_codes`` then bridges this segment into
    the global code space through a lazily-built remap array, so joins and
    group-bys can stay in integer space across segments sealed before the
    shared dictionary covered them.
    """

    encoding = Encoding.DICT
    __slots__ = ("codes", "values", "code_of", "shared", "_remap")

    def __init__(self, codes: array, values: list, code_of: dict,
                 shared: TableDictionary | None = None):
        self.codes = codes
        self.values = values
        self.code_of = code_of
        self.shared = shared
        self._remap = None

    def shared_codes(self, stats=None):
        """``(codes, to_global, shared_dict, local_values)`` or None.

        ``codes`` are in this segment's local space; ``to_global`` maps a
        local code to its global one (built once per sealed column, counted
        in ``stats.dict_remaps``).  Callers bucket/probe on local codes and
        translate only the distinct ones.
        """
        shared = self.shared
        if shared is None:
            return None
        remap = self._remap
        if remap is None:
            remap = shared.remap(self.values)
            if remap is None:          # dictionary demoted: no bridge
                self.shared = None
                return None
            self._remap = remap
            if stats is not None:
                stats.dict_remaps += 1
        return self.codes, remap, shared, self.values

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, i: int):
        code = self.codes[i]
        return None if code < 0 else self.values[code]

    def __iter__(self):
        # bulk-decode then iterate: one C-level comprehension beats a
        # per-element generator on every full-column consumer
        return iter(self.decode())

    def decode(self) -> list:
        values = self.values
        return [None if c < 0 else values[c] for c in self.codes]

    def count(self, value) -> int:
        if value is None:
            return self.codes.count(-1)
        code = self.code_of.get(value)
        return 0 if code is None else self.codes.count(code)

    def gather(self, selection: list) -> list:
        codes = self.codes
        values = self.values
        return [None if (c := codes[i]) < 0 else values[c]
                for i in selection]

    def dict_codes(self):
        """``(codes, dictionary)`` for code-space grouping: one accumulator
        slot per dictionary code, values decoded only for surviving keys."""
        return self.codes, self.values

    def code_for(self, value):
        """Code of ``value`` in this segment's dictionary (None if absent)."""
        if value is None:
            return None
        try:
            return self.code_of.get(value)
        except TypeError:          # unhashable literal can never match
            return None

    def select_eq(self, value) -> tuple[list, int]:
        code = self.code_for(value)
        if code is None:
            return [], 0
        return [i for i, c in enumerate(self.codes) if c == code], 0

    def select_in(self, values) -> tuple[list, int]:
        wanted = {code for v in values
                  if (code := self.code_for(v)) is not None}
        if not wanted:
            return [], 0
        return [i for i, c in enumerate(self.codes) if c in wanted], 0

    def select_where(self, test) -> tuple[list, int]:
        """Selection via a per-value test applied to the *dictionary* only:
        one test per distinct value, then integer code membership."""
        passing = {code for code, value in enumerate(self.values)
                   if test(value)}
        if not passing:
            return [], 0
        if len(passing) == 1:
            wanted = next(iter(passing))
            return [i for i, c in enumerate(self.codes) if c == wanted], 0
        return [i for i, c in enumerate(self.codes) if c in passing], 0


class SharedDictColumn(DictColumn):
    """Dictionary column whose codes live in the table-level code space.

    ``values``/``code_of`` alias the shared ``TableDictionary`` structures
    (append-only, so indexing stays valid as the dictionary grows);
    ``code_set`` holds the codes actually present in this segment, keeping
    membership checks and per-value scans bounded by the *segment's*
    distinct count rather than the table's.
    """

    __slots__ = ("code_set",)

    def __init__(self, codes: array, shared: TableDictionary,
                 code_set: frozenset):
        super().__init__(codes, shared.values, shared.code_of, shared)
        self.code_set = code_set

    def shared_codes(self, stats=None):
        # codes are already global: identity bridge, no remap to build
        return self.codes, None, self.shared, self.values

    def code_for(self, value):
        """Global code of ``value`` if present in *this segment*."""
        code = super().code_for(value)
        if code is None or code not in self.code_set:
            return None
        return code

    def select_eq_code(self, code) -> tuple[list, int]:
        """Selection by a pre-translated global code (statement-level
        literal translation: no per-segment dictionary hash)."""
        if code is None or code not in self.code_set:
            return [], 0
        return [i for i, c in enumerate(self.codes) if c == code], 0

    def select_in_codes(self, codes: set) -> tuple[list, int]:
        wanted = codes & self.code_set
        if not wanted:
            return [], 0
        if len(wanted) == 1:
            return self.select_eq_code(next(iter(wanted)))
        return [i for i, c in enumerate(self.codes) if c in wanted], 0

    def select_where(self, test) -> tuple[list, int]:
        # bound by the segment's distinct codes, not the table dictionary
        values = self.values
        passing = {code for code in self.code_set if test(values[code])}
        if not passing:
            return [], 0
        if len(passing) == 1:
            wanted = next(iter(passing))
            return [i for i, c in enumerate(self.codes) if c == wanted], 0
        return [i for i, c in enumerate(self.codes) if c in passing], 0


class RLEColumn:
    """Run-length-encoded column: parallel (value, length) run arrays.

    ``starts`` holds each run's first offset for O(log runs) random access;
    range/equality predicates test one value per run and keep or skip the
    whole run, and aggregates multiply by run length instead of iterating.
    """

    encoding = Encoding.RLE
    __slots__ = ("run_values", "run_lengths", "starts", "length")

    def __init__(self, run_values: list, run_lengths: array):
        self.run_values = run_values
        self.run_lengths = run_lengths
        starts = array("q", [0] * len(run_lengths))
        total = 0
        for i, n in enumerate(run_lengths):
            starts[i] = total
            total += n
        self.starts = starts
        self.length = total

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, i: int):
        return self.run_values[bisect_right(self.starts, i) - 1]

    def __iter__(self):
        # bulk-decode (C-level list repeats) then iterate
        return iter(self.decode())

    def iter_runs(self):
        """Yield ``(value, length)`` pairs — the aggregate fast path."""
        return zip(self.run_values, self.run_lengths)

    def decode(self) -> list:
        out: list = []
        for value, n in zip(self.run_values, self.run_lengths):
            out.extend([value] * n)
        return out

    def count(self, value) -> int:
        if value is None:
            return sum(n for v, n in self.iter_runs() if v is None)
        return sum(n for v, n in self.iter_runs()
                   if v is not None and v == value)

    def gather(self, selection: list) -> list:
        # selections are sorted scan offsets: walk the runs alongside them
        # instead of a bisect per element
        out = []
        run = 0
        starts = self.starts
        run_values = self.run_values
        top = len(starts) - 1
        for i in selection:
            while run < top and starts[run + 1] <= i:
                run += 1
            out.append(run_values[run])
        return out

    def _select(self, test) -> tuple[list, int]:
        out: list = []
        skipped = 0
        offset = 0
        for value, n in zip(self.run_values, self.run_lengths):
            if value is not None and test(value):
                out.extend(range(offset, offset + n))
            else:
                skipped += 1
            offset += n
        return out, skipped

    def select_eq(self, value) -> tuple[list, int]:
        return self._select(lambda v: v == value)

    def select_in(self, values) -> tuple[list, int]:
        wanted = set(values)
        return self._select(lambda v: v in wanted)

    def select_where(self, test) -> tuple[list, int]:
        return self._select(test)


class NativeColumn:
    """Typed-array column: ``array('q')`` ints / ``array('d')`` floats.

    NULL slots store a sentinel zero and their offsets live in ``nulls``;
    decoding restores exact values (the array is only built for homogeneous
    int or homogeneous float columns, so no int/float identity is lost).
    """

    encoding = Encoding.NATIVE
    __slots__ = ("data", "nulls", "_float_blocks")

    #: block width of the precomputed exact float partial sums
    SUM_BLOCK = 512

    def __init__(self, data: array, nulls: frozenset):
        self.data = data
        self.nulls = nulls
        # lazily built small materialized aggregates: one exponent->mantissa
        # dict per SUM_BLOCK values (sealed columns are immutable, so the
        # partials stay valid); False marks an unsupported column (inf/nan)
        self._float_blocks = None

    @property
    def all_ints(self) -> bool:
        """True when every slot is a non-NULL int — aggregates may fold the
        whole slice with builtin ``sum`` (exact for ints)."""
        return self.data.typecode == "q" and not self.nulls

    @property
    def all_floats(self) -> bool:
        """True when every slot is a non-NULL float (may include inf/nan)."""
        return self.data.typecode == "d" and not self.nulls

    def _mantissa_blocks(self):
        """Per-block exact float partial sums (built once per sealed column).

        Each block is a dict mapping binary exponent to the exact integer
        sum of the mantissas of its values — the same representation the
        executor's exact-sum accumulator uses, so folding a whole block is
        a handful of small-int dict merges instead of per-value work.
        """
        blocks = self._float_blocks
        if blocks is None:
            data = self.data
            width = self.SUM_BLOCK
            blocks = []
            try:
                for start in range(0, len(data), width):
                    local: dict = {}
                    get = local.get
                    for numerator, denominator in map(
                            float.as_integer_ratio, data[start:start + width]):
                        exponent = 1 - denominator.bit_length()
                        local[exponent] = get(exponent, 0) + numerator
                    blocks.append(local)
            except (OverflowError, ValueError):   # inf/nan: no partials
                blocks = False
            self._float_blocks = blocks
        return blocks

    def fold_range_sum(self, mantissas: dict, start: int, stop: int) -> bool:
        """Fold the exact sum of ``data[start:stop]`` (floats) into the
        exponent->mantissa dict ``mantissas``.

        Whole blocks merge from the precomputed partials; only the edge
        values decompose individually.  Returns False when unsupported
        (int column, NULLs, or non-finite floats present).
        """
        if self.data.typecode != "d" or self.nulls:
            return False
        blocks = self._mantissa_blocks()
        if blocks is False:
            return False
        data = self.data
        width = self.SUM_BLOCK
        get = mantissas.get
        first_block = -(-start // width)          # ceil
        last_block = stop // width                # floor
        if first_block >= last_block:             # no whole block inside
            edges = (data[start:stop],)
        else:
            for block in blocks[first_block:last_block]:
                for exponent, mantissa in block.items():
                    mantissas[exponent] = get(exponent, 0) + mantissa
            edges = (data[start:first_block * width],
                     data[last_block * width:stop])
        for edge in edges:
            for numerator, denominator in map(float.as_integer_ratio, edge):
                exponent = 1 - denominator.bit_length()
                mantissas[exponent] = get(exponent, 0) + numerator
        return True

    def range_int_sum(self, start: int, stop: int):
        """Exact builtin sum of ``data[start:stop]`` for int columns
        (``None`` when unsupported)."""
        if self.data.typecode != "q" or self.nulls:
            return None
        return sum(self.data[start:stop])

    def contiguous_source(self):
        """The whole column is trivially one dense range (see the lazy
        gather's method of the same name)."""
        return self, 0, len(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, i: int):
        return None if i in self.nulls else self.data[i]

    def __iter__(self):
        if not self.nulls:
            return iter(self.data)
        return iter(self.decode())

    def decode(self) -> list:
        # bulk-convert then patch the (usually few) NULL slots: far cheaper
        # than a per-element membership test
        out = list(self.data)
        for i in self.nulls:
            out[i] = None
        return out

    def count(self, value) -> int:
        if value is None:
            return len(self.nulls)
        if not self.nulls:
            return self.data.count(value)
        nulls = self.nulls
        return sum(1 for i, v in enumerate(self.data)
                   if i not in nulls and v == value)

    def gather(self, selection: list) -> list:
        data = self.data
        if not self.nulls:
            return [data[i] for i in selection]
        nulls = self.nulls
        return [None if i in nulls else data[i] for i in selection]

    def _select(self, test) -> tuple[list, int]:
        if not self.nulls:
            return [i for i, v in enumerate(self.data) if test(v)], 0
        nulls = self.nulls
        return [i for i, v in enumerate(self.data)
                if i not in nulls and test(v)], 0

    def select_eq(self, value) -> tuple[list, int]:
        return self._select(lambda v: v == value)

    def select_in(self, values) -> tuple[list, int]:
        wanted = set(values)
        return self._select(lambda v: v in wanted)

    def select_where(self, test) -> tuple[list, int]:
        return self._select(test)


def _encoded_bytes(column) -> int:
    """Approximate footprint of one encoded column."""
    if isinstance(column, SharedDictColumn):
        # the dictionary is table-level and counted once at the replica
        # (``shared_dict_bytes``); the segment pays for codes + code set
        return (64 + column.codes.itemsize * len(column.codes)
                + 8 * len(column.code_set))
    if isinstance(column, DictColumn):
        return (64 + column.codes.itemsize * len(column.codes)
                + _plain_bytes(column.values))
    if isinstance(column, RLEColumn):
        return (64 + 2 * column.run_lengths.itemsize * len(column.run_lengths)
                + _plain_bytes(column.run_values))
    if isinstance(column, NativeColumn):
        return (64 + column.data.itemsize * len(column.data)
                + 8 * len(column.nulls))
    return _plain_bytes(column)


def _encode_column(values: list, shared: TableDictionary | None = None,
                   encode_shared: bool = True):
    """Pick and build the cheapest safe encoding for a sealed column slice.

    Returns the original list when no encoding applies (``PLAIN``).  The
    choice is conservative: NATIVE requires a *homogeneous* int or float
    column (so decoding cannot change a value's type), DICT requires
    hashable low-cardinality strings, and RLE requires genuinely long runs
    (value equality across a run is exact, so round-tripping is lossless).

    ``shared`` is the column's table-level dictionary (when the replica
    runs with shared dictionaries): with ``encode_shared`` the string
    branch encodes straight into the global code space (demotion falls
    through to the per-segment choices); without it — the replication
    fill-time seal, which must not pay the table-wide dictionary walk —
    the per-segment dictionary is built as usual but keeps a reference to
    ``shared`` so readers can bridge via a remap array later.
    """
    n = len(values)
    if n == 0:
        return values
    runs = 1
    previous = values[0]
    all_int = True
    all_float = True
    all_str = True
    nulls = 0
    try:
        for value in values:
            if value is not previous and value != previous:
                runs += 1
            previous = value
            if value is None:
                nulls += 1
                continue
            if all_int and not (type(value) is int
                                and _INT64_MIN <= value <= _INT64_MAX):
                all_int = False
            if all_float and type(value) is not float:
                all_float = False
            if all_str and type(value) is not str:
                all_str = False
    except TypeError:
        # a value that cannot even be compared for equality (exotic type
        # clash): keep the object list untouched
        return values
    if nulls:
        all_int = all_int and nulls < n
        all_float = all_float and nulls < n
    if nulls == n:
        all_int = all_float = all_str = False

    def build_rle():
        run_values: list = []
        run_lengths = array("q")
        previous_value = values[0]
        count = 0
        for value in values:
            if count and (value is previous_value
                          or (value == previous_value
                              and type(value) is type(previous_value))):
                count += 1
                continue
            if count:
                run_values.append(previous_value)
                run_lengths.append(count)
            previous_value = value
            count = 1
        run_values.append(previous_value)
        run_lengths.append(count)
        return RLEColumn(run_values, run_lengths)

    if n // runs >= RLE_MIN_AVG_RUN:
        return build_rle()
    if all_int or all_float:
        data = array("q" if all_int else "d",
                     [0 if v is None else v for v in values])
        null_set = (frozenset(i for i, v in enumerate(values) if v is None)
                    if nulls else frozenset())
        return NativeColumn(data, null_set)
    if all_str:
        if shared is not None and encode_shared and shared.active:
            shared_codes = shared.encode(values)
            if shared_codes is not None:
                code_set = frozenset(
                    c for c in set(shared_codes) if c >= 0)
                return SharedDictColumn(shared_codes, shared, code_set)
        code_of: dict = {}
        codes = array("i")
        dictionary: list = []
        for value in values:
            if value is None:
                codes.append(-1)
                continue
            code = code_of.get(value)
            if code is None:
                code = code_of[value] = len(dictionary)
                dictionary.append(value)
                if len(dictionary) > DICT_MAX_CARDINALITY:
                    break
            codes.append(code)
        else:
            return DictColumn(
                codes, dictionary, code_of,
                shared if shared is not None and shared.active else None)
    if n // runs >= RLE_FALLBACK_AVG_RUN:
        return build_rle()
    return values


class Segment:
    """One fixed-capacity block of column arrays with zone maps.

    Open segments hold plain lists and receive WAL applies; a segment that
    fills up is *sealed* (each column encoded).  In-place overwrites demote
    a sealed segment back to plain lists and mark it dirty for re-encoding
    at the next compaction.
    """

    __slots__ = ("capacity", "columns", "live", "size", "live_count",
                 "mins", "maxs", "zone_valid", "encoded", "dirty",
                 "plain_bytes", "encoded_bytes", "sketch_epoch")

    def __init__(self, n_columns: int, capacity: int = SEGMENT_ROWS):
        self.capacity = capacity
        self.columns: list = [[] for _ in range(n_columns)]
        self.live: list[bool] = []
        self.size = 0          # rows ever appended (== len(self.live))
        self.live_count = 0
        # zone maps: min/max over every non-NULL value ever written here.
        # Widen-only — deletes and overwrites never narrow them — so the
        # interval is always a superset of the live values (prune-safe).
        self.mins: list = [None] * n_columns
        self.maxs: list = [None] * n_columns
        self.zone_valid = [True] * n_columns  # False after a type clash
        self.encoded = False
        self.dirty = False          # demoted since the last seal
        self.plain_bytes = 0
        self.encoded_bytes = 0
        # bumped by every mutation of sealed content (kill/revive/demote/
        # re-seal): a cached sketch built at epoch E is served only while
        # the segment is still at epoch E, so a bypassed eager-invalidation
        # hook can never surface a stale partial
        self.sketch_epoch = 0

    @property
    def full(self) -> bool:
        return self.size >= self.capacity

    def encodings(self) -> list[str]:
        return [getattr(col, "encoding", Encoding.PLAIN)
                for col in self.columns]

    def observe_batch(self, rows: list[tuple]):
        """Widen the zone maps to cover a whole applied-WAL chunk at once.

        One min()/max() per column per chunk replaces the per-row per-column
        comparison loop of the old ``_observe`` — the replica apply path
        batches all widening behind the chunk.
        """
        for pos in range(len(self.columns)):
            if not self.zone_valid[pos]:
                continue
            try:
                values = [v for row in rows
                          if (v := row[pos]) is not None]
                if not values:
                    continue
                low = min(values)
                high = max(values)
                current = self.mins[pos]
                if current is None:
                    self.mins[pos] = low
                    self.maxs[pos] = high
                else:
                    if low < current:
                        self.mins[pos] = low
                    if high > self.maxs[pos]:
                        self.maxs[pos] = high
            except TypeError:
                # mixed uncomparable types: disable pruning on this column
                self.zone_valid[pos] = False
                self.mins[pos] = None
                self.maxs[pos] = None

    def append(self, values: tuple) -> int:
        """Append a live row; returns its offset within the segment.

        Zone maps are *not* widened here — the owning table batches
        ``observe_batch`` per applied WAL chunk.
        """
        offset = self.size
        for col, value in zip(self.columns, values):
            col.append(value)
        self.live.append(True)
        self.size += 1
        self.live_count += 1
        return offset

    def write(self, offset: int, values: tuple):
        """Overwrite a slot in place (replicated UPDATE / reinsert).

        Encoded columns are immutable: the first overwrite demotes the
        segment back to plain lists (re-encoded at the next compaction).
        """
        if self.encoded:
            self.demote()
        for col, value in zip(self.columns, values):
            col[offset] = value

    def demote(self):
        """Decode every encoded column back to a plain list."""
        for pos, col in enumerate(self.columns):
            if not isinstance(col, list):
                self.columns[pos] = col.decode()
        self.encoded = False
        self.dirty = True
        self.sketch_epoch += 1

    def seal(self, shared_dicts: dict | None = None,
             encode_shared: bool = True):
        """Encode every column (called when the segment fills / compacts).

        ``shared_dicts`` maps column positions to their table-level
        ``TableDictionary``; compaction-time seals encode through it
        (``encode_shared``), fill-time seals only attach the reference.

        The encode is atomic: every column is encoded into a list built
        aside, published with single assignments only once all columns
        succeeded — a crash mid-seal leaves the segment fully plain (and
        fully queryable), never half-encoded.
        """
        plain_total = 0
        encoded_total = 0
        new_columns: list = []
        for pos, col in enumerate(self.columns):
            values = col if isinstance(col, list) else col.decode()
            shared = shared_dicts.get(pos) if shared_dicts else None
            encoded = _encode_column(values, shared, encode_shared)
            new_columns.append(encoded)
            plain_total += _plain_bytes(values)
            encoded_total += _encoded_bytes(encoded)
        self.columns = new_columns
        self.plain_bytes = plain_total
        self.encoded_bytes = encoded_total
        self.encoded = True
        self.dirty = False
        self.sketch_epoch += 1

    def kill(self, offset: int):
        self.live[offset] = False
        self.live_count -= 1
        self.sketch_epoch += 1

    def revive(self, offset: int):
        self.live[offset] = True
        self.live_count += 1
        self.sketch_epoch += 1

    def may_contain(self, pos: int, low, high,
                    low_inclusive: bool = True,
                    high_inclusive: bool = True) -> bool:
        """Can any value of column ``pos`` fall inside [low, high]?

        ``None`` bounds are open.  Returns True whenever the zone map cannot
        prove the segment disjoint (the only direction that must be exact).
        """
        if not self.zone_valid[pos]:
            return True
        mn = self.mins[pos]
        if mn is None:
            # no non-NULL value was ever written: range/equality predicates
            # cannot match (NULL comparisons are never true)
            return False
        mx = self.maxs[pos]
        try:
            if low is not None:
                if (mx < low) if low_inclusive else (mx <= low):
                    return False
            if high is not None:
                if (mn > high) if high_inclusive else (mn >= high):
                    return False
        except TypeError:
            return True
        return True


class SegmentSketchCache:
    """Bounded LRU of per-segment aggregate partials ("sketches").

    A sealed main segment is immutable between kills and compactions, so
    its contribution to a sketch-eligible aggregate (exact COUNT / SUM /
    AVG / MIN / MAX partials, grouped or not) is a constant the executor
    would otherwise recompute on every statement.  Entries are keyed by
    ``(id(segment), plan sketch key)`` and pin the ``Segment`` object (so
    an id can never be recycled under a live entry) together with the
    segment's ``sketch_epoch`` at build time: any mutation of sealed
    content — slot kill/revive, demotion, re-seal — bumps the epoch, so a
    stale partial is unservable even if an eager invalidation hook were
    bypassed.  Memory is bounded by ``budget_bytes``: inserts evict
    least-recently-used entries past the budget.  Counters (`evicted`,
    `invalidated`) are cumulative for the replica's lifetime and survive
    ``clear()``.
    """

    def __init__(self, budget_bytes: int = SKETCH_BUDGET_BYTES):
        self.budget_bytes = budget_bytes
        # (id(segment), key) -> (segment, epoch, value, nbytes), LRU order
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self._by_segment: dict[int, set] = {}
        self._lock = threading.Lock()
        self.total_bytes = 0
        self.evicted = 0
        self.invalidated = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _drop_locked(self, full_key: tuple):
        entry = self._entries.pop(full_key, None)
        if entry is None:
            return
        self.total_bytes -= entry[3]
        keys = self._by_segment.get(full_key[0])
        if keys is not None:
            keys.discard(full_key)
            if not keys:
                del self._by_segment[full_key[0]]

    def lookup(self, segment: Segment, key):
        """The cached partial for ``(segment, key)``, or None.

        Epoch mismatches count as invalidations and drop the entry — the
        caller rebuilds from the segment's current content.
        """
        full_key = (id(segment), key)
        with self._lock:
            entry = self._entries.get(full_key)
            if entry is None:
                return None
            held, epoch, value, _nbytes = entry
            if held is not segment or epoch != segment.sketch_epoch:
                self._drop_locked(full_key)
                self.invalidated += 1
                return None
            self._entries.move_to_end(full_key)
            return value

    def store(self, segment: Segment, key, value, nbytes: int):
        """Cache one partial, evicting LRU entries past the budget."""
        if nbytes > self.budget_bytes:
            return
        full_key = (id(segment), key)
        with self._lock:
            if full_key in self._entries:
                self._drop_locked(full_key)
            self._entries[full_key] = \
                (segment, segment.sketch_epoch, value, nbytes)
            self._by_segment.setdefault(id(segment), set()).add(full_key)
            self.total_bytes += nbytes
            while self.total_bytes > self.budget_bytes and self._entries:
                self._drop_locked(next(iter(self._entries)))
                self.evicted += 1

    def invalidate(self, segment: Segment):
        """Eagerly drop every partial of one mutated segment."""
        with self._lock:
            keys = self._by_segment.get(id(segment))
            if not keys:
                return
            for full_key in list(keys):
                self._drop_locked(full_key)
                self.invalidated += 1

    def drop_segments(self, segments):
        """Drop partials of segments about to be rewritten by compaction."""
        for segment in segments:
            self.invalidate(segment)

    def clear(self):
        """Drop every entry (replica reset); counters stay cumulative."""
        with self._lock:
            self._entries.clear()
            self._by_segment.clear()
            self.total_bytes = 0


class ColumnarTable:
    """Column-major storage for one table, in fixed-size segments.

    ``sorted_compaction=True`` switches the table to the delta–main
    organisation: ``_segments`` becomes the unsorted plain delta tail and
    ``_main_segments`` holds the sort-key-ordered (encoded) segments
    produced by ``compact()`` merges.  ``sort_key`` is a tuple of column
    positions (defaults to the primary key).
    """

    def __init__(self, table: Table, segment_rows: int = SEGMENT_ROWS,
                 encode: bool = True,
                 sort_key: tuple[int, ...] | None = None,
                 sorted_compaction: bool = False,
                 merge_totals: list | None = None,
                 lock: threading.RLock | None = None,
                 shared_dicts: dict | None = None,
                 failpoints=None,
                 sketches: SegmentSketchCache | None = None):
        if segment_rows <= 0:
            raise ValueError("segment_rows must be positive")
        self._failpoints = failpoints
        # replica-wide sketch cache: kills/revives/overwrites invalidate
        # the touched segment's partials eagerly (epoch checks backstop)
        self._sketches = sketches
        # serialises the mutable touch points (WAL apply, zone-map
        # widening, compaction swap) against concurrent pool workers; a
        # replica shares one lock across its tables so a chunk apply is
        # atomic with respect to background compaction.  Re-entrant
        # because compact() nests flush_zone_maps().
        self._lock = lock if lock is not None else threading.RLock()
        self.table = table
        self.segment_rows = segment_rows
        self.encode = encode
        self.sorted_mode = sorted_compaction
        # column position -> table-level TableDictionary (shared across
        # the table's partitions); None disables shared dictionaries
        self.shared_dicts = shared_dicts
        self.sort_positions: tuple[int, ...] = (
            tuple(sort_key) if sort_key is not None else table.pk_positions)
        # arrival-order segments (unsorted mode) / plain delta tail (sorted)
        self._segments: list[Segment] = []
        self._pk_to_slot: dict[tuple, int] = {}
        # sort-key-ordered merged segments (sorted mode only), with the
        # canonical sort-key tuple of each segment's first and last
        # physical row — the sorted zone-map index main_span() bisects
        self._main_segments: list[Segment] = []
        self._main_pk_to_slot: dict[tuple, int] = {}   # live main rows only
        self.main_lo: list[tuple] = []
        self.main_hi: list[tuple] = []
        self.row_count = 0
        # zone-map widening deferred until the end of the apply chunk:
        # (segment, values) pairs grouped and flushed by flush_zone_maps()
        self._zone_pending: list[tuple[Segment, tuple]] = []
        self.encode_events = 0      # seals + compaction re-encodes
        # ordered-compaction accounting: per-table cumulative counters,
        # plus the replica's shared [segments, rows] totals so replica-wide
        # reads stay O(1) instead of sweeping tables x partitions
        self.compactions = 0
        self.segments_merged_total = 0
        self.rows_merged_total = 0
        self._merge_totals = merge_totals

    # -- write path (WAL application) ----------------------------------

    def _sketch_invalidate(self, segment: Segment):
        if self._sketches is not None:
            self._sketches.invalidate(segment)

    def _locate(self, slot: int) -> tuple[Segment, int]:
        return (self._segments[slot // self.segment_rows],
                slot % self.segment_rows)

    def _locate_main(self, slot: int) -> tuple[Segment, int]:
        return (self._main_segments[slot // self.segment_rows],
                slot % self.segment_rows)

    def _delta_append(self, pk: tuple, values: tuple) -> Segment:
        """Append a new live row to the delta/arrival tail."""
        if not self._segments or self._segments[-1].full:
            self._segments.append(
                Segment(len(self.table.columns), self.segment_rows))
        segment = self._segments[-1]
        offset = segment.append(values)
        self._pk_to_slot[pk] = \
            (len(self._segments) - 1) * self.segment_rows + offset
        self.row_count += 1
        return segment

    def apply(self, pk: tuple, values: tuple | None, op: LogOp):
        with self._lock:
            self._apply_locked(pk, values, op)

    def _apply_locked(self, pk: tuple, values: tuple | None, op: LogOp):
        if self.sorted_mode:
            self._apply_sorted(pk, values, op)
            return
        slot = self._pk_to_slot.get(pk)
        if op is LogOp.DELETE or values is None:
            if slot is not None:
                segment, offset = self._locate(slot)
                if segment.live[offset]:
                    segment.kill(offset)
                    self.row_count -= 1
                    self._sketch_invalidate(segment)
            return
        if slot is None:
            segment = self._delta_append(pk, values)
            if segment.full and self.encode:
                self.flush_zone_maps()
                # replication hot path: per-segment encode only, with the
                # shared dictionary attached for later remap bridging
                segment.seal(self.shared_dicts, encode_shared=False)
                self.encode_events += 1
        else:
            segment, offset = self._locate(slot)
            if not segment.live[offset]:
                segment.revive(offset)
                self.row_count += 1
            segment.write(offset, values)
            self._sketch_invalidate(segment)
        self._zone_pending.append((segment, values))

    def _apply_sorted(self, pk: tuple, values: tuple | None, op: LogOp):
        """Delta–main apply: main segments are immutable between merges.

        Deletes kill the row wherever it lives (delta slot or main live
        bitmap); inserts/updates of a pk living in main kill the main slot
        and append the new version to the delta tail, so the newest version
        of every pk lives in exactly one place and merge-on-read needs no
        per-row deduplication.  Delta segments never seal: they stay plain
        until the next merge re-sorts them into main.
        """
        slot = self._pk_to_slot.get(pk)
        if op is LogOp.DELETE or values is None:
            if slot is not None:
                segment, offset = self._locate(slot)
                if segment.live[offset]:
                    segment.kill(offset)
                    self.row_count -= 1
            else:
                main_slot = self._main_pk_to_slot.pop(pk, None)
                if main_slot is not None:
                    segment, offset = self._locate_main(main_slot)
                    segment.kill(offset)
                    self.row_count -= 1
                    self._sketch_invalidate(segment)
            return
        if slot is None:
            main_slot = self._main_pk_to_slot.pop(pk, None)
            if main_slot is not None:
                # supersede the main version; the dead slot is reclaimed
                # by the next merge
                segment, offset = self._locate_main(main_slot)
                segment.kill(offset)
                self.row_count -= 1
                self._sketch_invalidate(segment)
            segment = self._delta_append(pk, values)
        else:
            segment, offset = self._locate(slot)
            if not segment.live[offset]:
                segment.revive(offset)
                self.row_count += 1
            segment.write(offset, values)
        self._zone_pending.append((segment, values))

    def flush_zone_maps(self):
        """Batch-widen zone maps for everything applied since the last
        flush (one ``observe_batch`` per touched segment).

        Locked: two concurrent flushes racing on the swap could each widen
        from half the pending rows — zone maps would end up *narrower*
        than the written values, breaking prune safety.
        """
        with self._lock:
            self._flush_zone_maps_locked()

    def _flush_zone_maps_locked(self):
        pending = self._zone_pending
        if not pending:
            return
        self._zone_pending = []
        by_segment: dict[int, tuple[Segment, list]] = {}
        for segment, values in pending:
            entry = by_segment.get(id(segment))
            if entry is None:
                by_segment[id(segment)] = (segment, [values])
            else:
                entry[1].append(values)
        for segment, rows in by_segment.values():
            segment.observe_batch(rows)

    def compact(self, force: bool = False) -> int:
        """Background compaction; returns the number of segments produced.

        Arrival-order tables re-encode demoted (dirty) sealed-size
        segments.  Delta–main tables merge the delta tail into the sorted
        main segments once the delta reaches a full segment's worth of
        live rows (``force=True`` merges any non-empty delta) — the
        threshold amortises the main rewrite over many applied chunks.
        """
        with self._lock:
            if self.sorted_mode:
                self.flush_zone_maps()
                pending = self.delta_live_rows()
                if pending == 0:
                    return 0
                if not force and pending < self.segment_rows:
                    return 0
                return self._merge_delta()
            if not self.encode:
                return 0
            self.flush_zone_maps()
            compacted = 0
            for segment in self._segments:
                if segment.dirty and segment.full:
                    segment.seal(self.shared_dicts)
                    self.encode_events += 1
                    compacted += 1
            return compacted

    def delta_live_rows(self) -> int:
        """Live rows waiting in the delta tail (0 for arrival-order tables)."""
        if not self.sorted_mode:
            return 0
        return sum(segment.live_count for segment in self._segments)

    def _live_rows_of(self, segments: list[Segment]) -> list[tuple]:
        """Materialise the live rows of ``segments`` as value tuples."""
        rows: list[tuple] = []
        for segment in segments:
            if segment.live_count == 0:
                continue
            columns = [col if isinstance(col, list) else col.decode()
                       for col in segment.columns]
            live = segment.live
            if segment.live_count == segment.size:
                rows.extend(zip(*columns))
            else:
                rows.extend(tuple(col[i] for col in columns)
                            for i in range(segment.size) if live[i])
        return rows

    def _merge_delta(self) -> int:
        """Ordered compaction: merge the delta into the sorted main.

        **Segment-granular**: only the contiguous span of main segments
        whose sort-key range overlaps the delta's key envelope (located by
        ``main_span`` binary search) is rewritten; main segments outside
        the span — and their slot numbering prefix — are reused as-is, so
        merge cost is bounded by overlay locality instead of table size.
        The rewrite region's live rows plus the delta rows are re-sorted
        on the canonical sort key (ties broken by the canonical
        primary-key order, so the rebuilt layout is deterministic for
        non-unique sort keys) and re-sealed into fresh encoded segments;
        dead slots inside the region are dropped.  Sorting is what
        lengthens RLE runs and keeps the per-segment key ranges disjoint —
        the precondition for ``main_span`` binary search.

        **Swap, don't mutate**: the new segment/bound lists are built
        aside and installed with single assignments, and untouched
        ``Segment`` objects are shared between the old and new lists — an
        in-flight scan holding a pre-swap ``read_snapshot`` keeps a
        consistent view for its whole lifetime.
        """
        sort_positions = self.sort_positions
        pk_positions = self.table.pk_positions

        if sort_positions == pk_positions:
            def merge_key(row):
                return canonical_key_of(row, sort_positions)
        else:
            def merge_key(row):
                return (canonical_key_of(row, sort_positions)
                        + canonical_key_of(row, pk_positions))

        delta_rows = self._live_rows_of(self._segments)
        if not delta_rows:
            return 0
        main = self._main_segments
        if main:
            delta_keys = [canonical_key_of(row, sort_positions)
                          for row in delta_rows]
            start, stop = self.main_span(min(delta_keys), max(delta_keys))
        else:
            start, stop = 0, 0

        rows = self._live_rows_of(main[start:stop])
        rows.extend(delta_rows)
        rows.sort(key=merge_key)

        n_columns = len(self.table.columns)
        width = self.segment_rows
        pk_of = self.table.pk_of
        segments: list[Segment] = []
        lows: list[tuple] = []
        highs: list[tuple] = []
        for begin in range(0, len(rows), width):
            chunk = rows[begin:begin + width]
            segment = Segment(n_columns, width)
            for row in chunk:
                segment.append(row)
            segment.observe_batch(chunk)
            if self.encode:
                # ordered compaction is where shared dictionaries are
                # built/refreshed: every merged segment encodes straight
                # into the global code space
                segment.seal(self.shared_dicts)
                self.encode_events += 1
            segments.append(segment)
            lows.append(canonical_key_of(chunk[0], sort_positions))
            highs.append(canonical_key_of(chunk[-1], sort_positions))
        # crash point: everything above built fresh objects aside; the
        # publish below is the first mutation.  A fault here leaves the
        # old main + delta fully queryable (compaction simply re-runs).
        if self._failpoints is not None:
            self._failpoints.fire("compact.merge")
        # remap live main slots: the prefix keeps its numbering, the
        # suffix shifts by the region's segment-count change, the region
        # itself is renumbered from the merged row order — no decoding
        region_lo = start * width
        region_hi = stop * width
        shift = (len(segments) - (stop - start)) * width
        pk_map: dict[tuple, int] = {}
        for pk, slot in self._main_pk_to_slot.items():
            if slot < region_lo:
                pk_map[pk] = slot
            elif slot >= region_hi:
                pk_map[pk] = slot + shift
        for offset, row in enumerate(rows):
            pk_map[pk_of(row)] = region_lo + offset
        # sketches of the rewritten region die with their segments;
        # untouched segments outside [start, stop) keep theirs — that
        # sharing is what carries warm sketches across disjoint-delta
        # merges (including PR 7's background compactions)
        if self._sketches is not None:
            self._sketches.drop_segments(main[start:stop])
        self._main_segments = main[:start] + segments + main[stop:]
        self.main_lo = self.main_lo[:start] + lows + self.main_lo[stop:]
        self.main_hi = self.main_hi[:start] + highs + self.main_hi[stop:]
        self._main_pk_to_slot = pk_map
        self._segments = []
        self._pk_to_slot = {}
        self._zone_pending = []
        self.compactions += 1
        self.segments_merged_total += len(segments)
        self.rows_merged_total += len(rows)
        if self._merge_totals is not None:
            self._merge_totals[0] += len(segments)
            self._merge_totals[1] += len(rows)
        return len(segments)

    # -- consistent read snapshots -------------------------------------

    def read_snapshot(self) -> tuple[list[Segment], list[tuple],
                                     list[tuple], list[Segment]]:
        """Atomic ``(main_segments, main_lo, main_hi, delta_segments)``.

        Scans must take main list + bound lists + delta in one locked
        read: a background merge swap between two separate reads would
        pair pre-swap segments with post-swap bounds.  The returned lists
        stay internally consistent forever — compaction swaps in fresh
        lists instead of mutating these (sealed segments are immutable;
        delta tail segments may still grow, which only adds rows past the
        snapshot-time size).
        """
        with self._lock:
            self.flush_zone_maps()
            return (self._main_segments, self.main_lo, self.main_hi,
                    self._segments)

    @staticmethod
    def span_of(main_lo: list[tuple], main_hi: list[tuple],
                lo_key: tuple, hi_key: tuple) -> tuple[int, int]:
        """``main_span`` over snapshot bound lists (see ``read_snapshot``)."""
        if not main_lo:
            return 0, 0
        start, stop = 0, len(main_lo)
        if lo_key:
            k = len(lo_key)
            start = bisect_left(main_hi, lo_key, key=lambda key: key[:k])
        if hi_key:
            k = len(hi_key)
            stop = bisect_right(main_lo, hi_key, key=lambda key: key[:k])
        return start, max(start, stop)

    # -- sorted-index lookups ------------------------------------------

    def main_span(self, lo_key: tuple, hi_key: tuple) -> tuple[int, int]:
        """Contiguous ``[start, stop)`` span of main segments whose sort-key
        range can intersect ``[lo_key, hi_key]``.

        Keys are canonical sort-key *prefix* tuples (empty = unbounded on
        that side).  Because main segments are globally ordered, one binary
        search per bound replaces the per-segment zone-map checks: segments
        outside the span are provably disjoint from the predicate.
        """
        return self.span_of(self.main_lo, self.main_hi, lo_key, hi_key)

    # -- encoding statistics -------------------------------------------

    def _all_segments(self) -> list[Segment]:
        """Every segment in physical scan order (main first, then delta).

        Locked so the main + delta concatenation is one consistent
        snapshot even while a background merge swaps the lists.
        """
        with self._lock:
            if self.sorted_mode:
                return self._main_segments + self._segments
            return list(self._segments)

    def encoding_stats(self) -> dict:
        """Segment/byte accounting of the encoding layer."""
        self.flush_zone_maps()
        stats = {
            "segments_total": len(self._all_segments()),
            "segments_encoded": 0,
            "bytes_plain": 0,
            "bytes_encoded": 0,
            "encodings": {Encoding.PLAIN: 0, Encoding.DICT: 0,
                          Encoding.RLE: 0, Encoding.NATIVE: 0},
            # dictionary accounting: code bytes split from the dictionary
            # value bytes, and shared (table-level) vs per-segment counts
            "dict_code_bytes": 0,
            "dict_value_bytes": 0,
            "dicts_shared": 0,
            "dicts_per_segment": 0,
        }
        for segment in self._all_segments():
            if not segment.encoded:
                continue
            stats["segments_encoded"] += 1
            stats["bytes_plain"] += segment.plain_bytes
            stats["bytes_encoded"] += segment.encoded_bytes
            for encoding in segment.encodings():
                stats["encodings"][encoding] += 1
            for column in segment.columns:
                if not isinstance(column, DictColumn):
                    continue
                stats["dict_code_bytes"] += \
                    column.codes.itemsize * len(column.codes)
                if isinstance(column, SharedDictColumn):
                    stats["dicts_shared"] += 1
                else:
                    stats["dicts_per_segment"] += 1
                    stats["dict_value_bytes"] += _plain_bytes(column.values)
        stats["bytes_saved"] = stats["bytes_plain"] - stats["bytes_encoded"]
        return stats

    # -- read path ------------------------------------------------------

    def scan(self) -> Iterator[tuple[tuple, tuple]]:
        """Yield ``(pk, values)`` for live rows as of the applied watermark.

        Sorted tables scan in physical order (sorted main, then the delta
        overlay) so the row pipeline sees the same row sequence as the
        vectorized scan; arrival-order tables keep pk-insertion order.
        """
        self.flush_zone_maps()
        if self.sorted_mode:
            pk_of = self.table.pk_of
            for segment in self._all_segments():
                if segment.live_count == 0:
                    continue
                live = segment.live
                columns = segment.columns
                for offset in range(segment.size):
                    if live[offset]:
                        values = tuple(col[offset] for col in columns)
                        yield pk_of(values), values
            return
        segments = self._segments
        width = self.segment_rows
        for pk, slot in self._pk_to_slot.items():
            segment = segments[slot // width]
            offset = slot % width
            if segment.live[offset]:
                yield pk, tuple(col[offset] for col in segment.columns)

    def column_values(self, column: str) -> list:
        """Materialise one live column (used by columnar aggregate fast paths)."""
        self.flush_zone_maps()
        pos = self.table.position(column)
        if self.sorted_mode:
            values: list = []
            for segment in self._all_segments():
                if segment.live_count == 0:
                    continue
                column_data = segment.columns[pos]
                if segment.live_count == segment.size:
                    values.extend(column_data)
                else:
                    live = segment.live
                    values.extend(column_data[i] for i in range(segment.size)
                                  if live[i])
            return values
        segments = self._segments
        width = self.segment_rows
        return [
            segments[slot // width].columns[pos][slot % width]
            for slot in self._pk_to_slot.values()
            if segments[slot // width].live[slot % width]
        ]

    def segments(self) -> list[Segment]:
        self.flush_zone_maps()
        return list(self._all_segments())

    def main_segments(self) -> list[Segment]:
        """The sort-key-ordered merged segments (sorted mode)."""
        self.flush_zone_maps()
        return self._main_segments

    def delta_segments(self) -> list[Segment]:
        """The unsorted plain delta tail (sorted mode)."""
        self.flush_zone_maps()
        return self._segments

    def segment_count(self) -> int:
        return len(self._all_segments())

    def segment_batch(self, segment: Segment,
                      positions: list[int] | None = None) -> Batch:
        """Live column-slices of one segment as a ``Batch``.

        Batches reference (or copy live subsets of) the underlying arrays;
        they are only guaranteed stable until the next ``apply``.  Columns
        of sealed segments come back as encoded views (sequence-compatible).
        """
        self.flush_zone_maps()
        if positions is None:
            columns = segment.columns
        else:
            columns = [segment.columns[p] for p in positions]
        if segment.live_count == segment.size:
            return Batch(list(columns), segment.size)
        live = segment.live
        keep = [i for i in range(segment.size) if live[i]]
        return Batch([col.gather(keep) if hasattr(col, "gather")
                      else [col[i] for i in keep] for col in columns],
                     len(keep))

    def scan_batches(self, columns: list[str] | None = None,
                     skip_segment=None) -> Iterator[Batch]:
        """Yield live rows segment-at-a-time as column-slice batches.

        ``columns`` optionally projects to the named columns (table order is
        preserved otherwise).  ``skip_segment`` is an optional predicate
        ``(Segment) -> bool``; segments for which it returns True are
        skipped — the hook zone-map pruning plugs into.
        """
        self.flush_zone_maps()
        positions = None
        if columns is not None:
            positions = [self.table.position(c) for c in columns]
        for segment in self._all_segments():
            if segment.live_count == 0:
                continue
            if skip_segment is not None and skip_segment(segment):
                continue
            yield self.segment_batch(segment, positions)

    def scan_segments(self, skip_segment=None) -> Iterator[Segment]:
        """Yield non-empty segments (zone maps flushed), applying
        ``skip_segment`` pruning — the encoded-execution scan entry point."""
        self.flush_zone_maps()
        for segment in self._all_segments():
            if segment.live_count == 0:
                continue
            if skip_segment is not None and skip_segment(segment):
                continue
            yield segment


class PartitionedColumnarView:
    """Read-only union over one table's per-partition columnar stores.

    Presents the ``ColumnarTable`` read interface so row-pipeline scans and
    introspection work unchanged against partitioned replicas; partition-
    aware operators go straight to the per-partition tables instead.
    """

    def __init__(self, table: Table, parts: list[ColumnarTable]):
        self.table = table
        self.parts = parts

    @property
    def row_count(self) -> int:
        return sum(p.row_count for p in self.parts)

    def scan(self) -> Iterator[tuple[tuple, tuple]]:
        for part in self.parts:
            yield from part.scan()

    def column_values(self, column: str) -> list:
        values: list = []
        for part in self.parts:
            values.extend(part.column_values(column))
        return values

    def segments(self) -> list[Segment]:
        return [s for part in self.parts for s in part.segments()]

    def segment_count(self) -> int:
        return sum(p.segment_count() for p in self.parts)

    def encoding_stats(self) -> dict:
        return _merge_encoding_stats(p.encoding_stats() for p in self.parts)

    def scan_batches(self, columns: list[str] | None = None,
                     skip_segment=None) -> Iterator[Batch]:
        for part in self.parts:
            yield from part.scan_batches(columns, skip_segment)


def _merge_encoding_stats(stats_iter) -> dict:
    merged = {
        "segments_total": 0, "segments_encoded": 0,
        "bytes_plain": 0, "bytes_encoded": 0, "bytes_saved": 0,
        "encodings": {Encoding.PLAIN: 0, Encoding.DICT: 0,
                      Encoding.RLE: 0, Encoding.NATIVE: 0},
        "dict_code_bytes": 0, "dict_value_bytes": 0,
        "dicts_shared": 0, "dicts_per_segment": 0,
    }
    for stats in stats_iter:
        for key in ("segments_total", "segments_encoded",
                    "bytes_plain", "bytes_encoded", "bytes_saved",
                    "dict_code_bytes", "dict_value_bytes",
                    "dicts_shared", "dicts_per_segment"):
            merged[key] += stats[key]
        for encoding, count in stats["encodings"].items():
            merged["encodings"][encoding] += count
    return merged


class ColumnarReplica:
    """The set of columnar tables fed from the per-partition WAL streams.

    Each partition keeps its own tables and its own applied-LSN watermark,
    so replication progress (and therefore freshness) is partition-local —
    exactly how TiFlash tracks progress per region.  ``apply_from_partitions``
    merges the streams by global ``seq``, which reproduces the single-stream
    apply order bit-for-bit regardless of the partition count.

    ``encode=False`` forces every segment to stay PLAIN — the parity
    baseline the encoding tests and benchmarks compare against.
    ``sorted_compaction=True`` switches every table to the delta–main
    organisation (sort-key-ordered main segments + plain delta tails);
    False preserves the arrival-order engine byte-for-byte.
    """

    def __init__(self, segment_rows: int = SEGMENT_ROWS,
                 partition_map: PartitionMap | None = None,
                 encode: bool = True,
                 sorted_compaction: bool = False,
                 shared_dicts: bool = False,
                 shared_dict_cardinality: int = SHARED_DICT_MAX_CARDINALITY,
                 failpoints=None,
                 sketch_budget_bytes: int = SKETCH_BUDGET_BYTES):
        if segment_rows <= 0:
            raise ValueError("segment_rows must be positive")
        self.pmap = partition_map or PartitionMap(1)
        self._failpoints = failpoints
        # one replica-wide sketch cache shared by every table/partition:
        # the LRU budget bounds total sketch memory, not per-table memory
        self.sketches = SegmentSketchCache(sketch_budget_bytes)
        # (table, sort_key) in registration order: reset() rebuilds the
        # replica in place from this list, preserving object identity
        # (the executor and planner hold references to the replica)
        self._registrations: list[tuple] = []
        # one re-entrant lock shared by every table of the replica: a WAL
        # apply chunk, a zone-map flush and a background compaction swap
        # are mutually atomic, while sealed-segment reads stay lock-free
        self._lock = threading.RLock()
        # table -> one ColumnarTable per partition
        self._tables: dict[str, list[ColumnarTable]] = {}
        self.segment_rows = segment_rows
        self.encode = encode
        self.sorted_compaction = sorted_compaction
        # table-level shared dictionaries, keyed by column *domain*
        # ((table, column), with FK columns aliased to the referenced
        # column so PK/FK joins share one code space); per-table position
        # maps are what the tables and operators look through
        self.shared_dicts = shared_dicts and encode
        self.shared_dict_cardinality = shared_dict_cardinality
        self._domain_dicts: dict[tuple, TableDictionary] = {}
        self._table_dicts: dict[str, dict[int, TableDictionary]] = {}
        self.applied_lsns = [0] * self.pmap.partitions
        self.applied_ts = 0
        # scan_cost_factor cache, invalidated whenever a seal/compact
        # changes the encoded byte accounting (keyed on total encode events)
        self._scan_factor_cache: tuple[int, float] = (-1, 1.0)
        # replica-wide [segments, rows] merge totals, incremented by each
        # table's _merge_delta (O(1) reads on the simulator's hot loop),
        # plus the watermarks already handed to the simulator
        self._merge_totals: list = [0, 0]
        self._drained_segments_merged = 0
        self._drained_rows_merged = 0

    @property
    def partitions(self) -> int:
        return self.pmap.partitions

    @property
    def applied_lsn(self) -> int:
        """Applied watermark of unpartitioned replicas (single stream)."""
        if len(self.applied_lsns) != 1:
            raise CatalogError(
                "partitioned replica has one watermark per partition; "
                "use .applied_lsns"
            )
        return self.applied_lsns[0]

    @staticmethod
    def _dict_domain(table: Table, column_name: str) -> tuple:
        """Dictionary domain of one column: FK columns alias the referenced
        column's domain (single hop), so both sides of a PK/FK string join
        resolve to the *same* ``TableDictionary`` object."""
        for fk in table.foreign_keys:
            for name, ref_name in zip(fk.columns, fk.ref_columns):
                if name.upper() == column_name.upper():
                    return (fk.ref_table.upper(), ref_name.upper())
        return (table.name.upper(), column_name.upper())

    def _register_shared_dicts(self, table: Table) -> dict | None:
        if not self.shared_dicts:
            return None
        shared: dict[int, TableDictionary] = {}
        for pos, column in enumerate(table.columns):
            if not isinstance(column.col_type, VarcharType):
                continue          # only string columns are DICT-eligible
            domain = self._dict_domain(table, column.name)
            dictionary = self._domain_dicts.get(domain)
            if dictionary is None:
                dictionary = self._domain_dicts[domain] = \
                    TableDictionary(self.shared_dict_cardinality)
            shared[pos] = dictionary
        self._table_dicts[table.name.upper()] = shared
        return shared or None

    def shared_dict(self, table_name: str, position: int):
        """Table-level dictionary of one column (None when absent/off)."""
        return self._table_dicts.get(table_name.upper(), {}).get(position)

    def register_table(self, table: Table,
                       sort_key: tuple[int, ...] | None = None):
        key = table.name.upper()
        if key in self._tables:
            raise CatalogError(f"columnar table {table.name!r} already exists")
        shared = self._register_shared_dicts(table)
        self._tables[key] = [
            ColumnarTable(table, self.segment_rows, encode=self.encode,
                          sort_key=sort_key,
                          sorted_compaction=self.sorted_compaction,
                          merge_totals=self._merge_totals,
                          lock=self._lock,
                          shared_dicts=shared,
                          failpoints=self._failpoints,
                          sketches=self.sketches)
            for _ in self.pmap.all_partitions()
        ]
        self._registrations.append((table, sort_key))

    def reset(self):
        """Discard all replicated state; the replica rebuilds from LSN 0.

        Crash recovery: after the WALs have truncated their torn tails,
        the database re-replicates the surviving log into a freshly reset
        replica.  The rebuild happens *in place* (same object) because
        the executor and planner hold references to this replica.
        """
        with self._lock:
            registrations = list(self._registrations)
            self._registrations = []
            self._tables = {}
            self._domain_dicts = {}
            self._table_dicts = {}
            self.applied_lsns = [0] * self.pmap.partitions
            self.applied_ts = 0
            self.sketches.clear()
            self._scan_factor_cache = (-1, 1.0)
            self._merge_totals[0] = 0
            self._merge_totals[1] = 0
            self._drained_segments_merged = 0
            self._drained_rows_merged = 0
            for table, sort_key in registrations:
                self.register_table(table, sort_key)

    def has_table(self, name: str) -> bool:
        return name.upper() in self._tables

    def table(self, name: str) -> ColumnarTable | PartitionedColumnarView:
        parts = self.table_partitions(name)
        if len(parts) == 1:
            return parts[0]
        return PartitionedColumnarView(parts[0].table, parts)

    def table_partitions(self, name: str) -> list[ColumnarTable]:
        """The per-partition columnar stores of one table."""
        try:
            return self._tables[name.upper()]
        except KeyError:
            raise CatalogError(f"no columnar replica for table {name!r}") from None

    def _apply_record(self, pid: int, record):
        if self._failpoints is not None:
            # fires *before* the apply: the watermark still points at this
            # record, so a post-recovery replicate resumes exactly here
            self._failpoints.fire("replica.apply")
        parts = self._tables.get(record.table.upper())
        if parts is not None:
            parts[pid].apply(record.pk, record.values, record.op)
        self.applied_lsns[pid] = record.lsn + 1
        self.applied_ts = record.commit_ts

    def _flush_zone_maps(self):
        """End-of-chunk zone-map widening across every touched table."""
        for parts in self._tables.values():
            for part in parts:
                part.flush_zone_maps()

    def compact(self, force: bool = False) -> int:
        """Background compaction across tables and partitions.

        Arrival-order replicas re-encode segments demoted by in-place
        overwrites; delta–main replicas additionally merge delta tails
        into the sorted main segments (``force=True`` merges every
        non-empty delta regardless of the amortisation threshold).
        """
        return sum(part.compact(force)
                   for parts in self._tables.values() for part in parts)

    def delta_rows_pending(self) -> int:
        """Live rows waiting in delta tails across tables and partitions."""
        return sum(part.delta_live_rows()
                   for parts in self._tables.values() for part in parts)

    def drain_compaction_stats(self) -> tuple[int, int]:
        """``(segments_merged, rows_merged)`` since the last drain.

        The simulator charges ordered-compaction work to the columnar node
        group; draining keeps the charge incremental per engine tick.
        """
        segments, rows = self._merge_totals
        delta = (segments - self._drained_segments_merged,
                 rows - self._drained_rows_merged)
        self._drained_segments_merged = segments
        self._drained_rows_merged = rows
        return delta

    def segments_merged_total(self) -> int:
        """Cumulative segments produced by ordered compactions (O(1))."""
        return self._merge_totals[0]

    def encoding_stats(self) -> dict:
        """Aggregate encoding accounting across tables and partitions."""
        merged = _merge_encoding_stats(
            part.encoding_stats()
            for parts in self._tables.values() for part in parts)
        # the table-level dictionaries are stored once per domain — count
        # their value bytes here (per-segment dictionary bytes are already
        # inside each segment's encoded_bytes)
        shared_bytes = sum(_plain_bytes(d.values)
                           for d in self._domain_dicts.values())
        merged["shared_dict_bytes"] = shared_bytes
        merged["shared_dicts_total"] = len(self._domain_dicts)
        merged["shared_dicts_demoted"] = sum(
            1 for d in self._domain_dicts.values() if not d.active)
        # cached segment sketches are replica memory too: count them into
        # the encoded footprint so the compression ratio stays truthful
        # when sketches are enabled
        merged["sketch_bytes"] = self.sketches.total_bytes
        merged["sketches_cached"] = len(self.sketches)
        merged["sketch_evictions"] = self.sketches.evicted
        merged["bytes_encoded"] += shared_bytes + merged["sketch_bytes"]
        merged["bytes_saved"] = \
            merged["bytes_plain"] - merged["bytes_encoded"]
        plain = merged["bytes_plain"]
        merged["compression_ratio"] = (
            plain / merged["bytes_encoded"] if merged["bytes_encoded"] else 1.0)
        return merged

    def scan_cost_factor(self) -> float:
        """Per-row columnar scan cost multiplier for the simulator.

        The measured encoded/plain byte ratio of sealed segments (<= 1.0):
        an engine scanning dictionary codes and typed arrays moves that much
        less data per row.  1.0 while nothing is sealed or encoding is off.
        """
        events = sum(part.encode_events
                     for parts in self._tables.values() for part in parts)
        cached_events, cached_factor = self._scan_factor_cache
        if cached_events == events:
            return cached_factor
        stats = self.encoding_stats()
        if not stats["bytes_plain"] or not stats["bytes_encoded"]:
            factor = 1.0
        else:
            factor = max(0.05, min(1.0, stats["bytes_encoded"]
                                   / stats["bytes_plain"]))
        self._scan_factor_cache = (events, factor)
        return factor

    def apply_from(self, wal: WriteAheadLog, limit: int | None = None) -> int:
        """Apply pending records from the single stream (unpartitioned)."""
        records = wal.read_from(self.applied_lsn, limit)
        with self._lock:
            for record in records:
                self._apply_record(0, record)
            self._flush_zone_maps()
        return len(records)

    def apply_from_partitions(self, wals: list[WriteAheadLog],
                              limit: int | None = None) -> int:
        """Merge-apply pending records across partition streams by ``seq``.

        Applying in global commit order keeps partial replication (``limit``)
        equivalent to the unpartitioned single stream: the replica's state
        after N applied records is identical for every partition count.
        A heap merges the streams (O(log P) per record); with a ``limit``
        each stream is read at most ``limit`` records deep — applying N
        records in seq order can never need more than the first N of any
        one stream.
        """
        if len(wals) != len(self.applied_lsns):
            raise CatalogError(
                f"replica has {len(self.applied_lsns)} partitions but "
                f"{len(wals)} WAL streams were supplied"
            )
        pending = [wal.read_from(self.applied_lsns[pid], limit)
                   for pid, wal in enumerate(wals)]
        heap = [(records[0].seq, pid, 0)
                for pid, records in enumerate(pending) if records]
        heapq.heapify(heap)
        applied = 0
        # one lock span per chunk: concurrent scans see the replica either
        # before or after the whole apply, never mid-record
        with self._lock:
            while heap and (limit is None or applied < limit):
                _seq, pid, cursor = heapq.heappop(heap)
                records = pending[pid]
                self._apply_record(pid, records[cursor])
                applied += 1
                cursor += 1
                if cursor < len(records):
                    heapq.heappush(heap, (records[cursor].seq, pid, cursor))
            self._flush_zone_maps()
        return applied

    def lag(self, wal: WriteAheadLog) -> int:
        """Number of log records not yet applied (freshness gap)."""
        return wal.head_lsn - self.applied_lsn

    def total_lag(self, wals: list[WriteAheadLog]) -> int:
        """Records not yet applied, summed across partition streams."""
        return sum(
            wal.head_lsn - self.applied_lsns[pid]
            for pid, wal in enumerate(wals)
        )
