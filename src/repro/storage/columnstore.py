"""Columnar replica store (the TiFlash analogue).

The columnar store is kept consistent with the row store through
*asynchronous log replication*: ``apply_from(wal)`` consumes WAL records past
the replica's watermark and applies them to per-column arrays.  Readers see
data as of the replica's ``applied_ts`` — fresher replication means fresher
analytics, which is exactly the mechanism TiDB relies on in the paper.

Columnar tables support full scans only (no secondary indexes): analytical
plans routed here pay per-row scan costs that are much lower than row-store
scans, but point lookups stay on the row store.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.catalog.schema import Table
from repro.errors import CatalogError
from repro.storage.wal import LogOp, WriteAheadLog


class ColumnarTable:
    """Column-major storage for one table."""

    def __init__(self, table: Table):
        self.table = table
        self._columns: list[list] = [[] for _ in table.columns]
        self._pk_to_slot: dict[tuple, int] = {}
        self._live: list[bool] = []
        self.row_count = 0

    def apply(self, pk: tuple, values: tuple | None, op: LogOp):
        slot = self._pk_to_slot.get(pk)
        if op is LogOp.DELETE or values is None:
            if slot is not None and self._live[slot]:
                self._live[slot] = False
                self.row_count -= 1
            return
        if slot is None:
            slot = len(self._live)
            self._pk_to_slot[pk] = slot
            self._live.append(True)
            for col, value in zip(self._columns, values):
                col.append(value)
            self.row_count += 1
        else:
            if not self._live[slot]:
                self._live[slot] = True
                self.row_count += 1
            for col, value in zip(self._columns, values):
                col[slot] = value

    def scan(self) -> Iterator[tuple[tuple, tuple]]:
        """Yield ``(pk, values)`` for live rows as of the applied watermark."""
        slots = self._pk_to_slot
        live = self._live
        columns = self._columns
        for pk, slot in slots.items():
            if live[slot]:
                yield pk, tuple(col[slot] for col in columns)

    def column_values(self, column: str) -> list:
        """Materialise one live column (used by columnar aggregate fast paths)."""
        pos = self.table.position(column)
        col = self._columns[pos]
        return [col[slot] for slot in self._pk_to_slot.values() if self._live[slot]]


class ColumnarReplica:
    """The set of columnar tables fed from one WAL."""

    def __init__(self):
        self._tables: dict[str, ColumnarTable] = {}
        self.applied_lsn = 0
        self.applied_ts = 0

    def register_table(self, table: Table):
        key = table.name.upper()
        if key in self._tables:
            raise CatalogError(f"columnar table {table.name!r} already exists")
        self._tables[key] = ColumnarTable(table)

    def has_table(self, name: str) -> bool:
        return name.upper() in self._tables

    def table(self, name: str) -> ColumnarTable:
        try:
            return self._tables[name.upper()]
        except KeyError:
            raise CatalogError(f"no columnar replica for table {name!r}") from None

    def apply_from(self, wal: WriteAheadLog, limit: int | None = None) -> int:
        """Apply pending log records; return how many were applied."""
        records = wal.read_from(self.applied_lsn, limit)
        for record in records:
            store = self._tables.get(record.table.upper())
            if store is not None:
                store.apply(record.pk, record.values, record.op)
            self.applied_lsn = record.lsn + 1
            self.applied_ts = record.commit_ts
        return len(records)

    def lag(self, wal: WriteAheadLog) -> int:
        """Number of log records not yet applied (freshness gap)."""
        return wal.head_lsn - self.applied_lsn
