"""LRU buffer-pool model.

The buffer pool is the channel through which large analytical scans disturb
online transactions on a shared store: a scan pulls its pages through the
pool, evicting the OLTP working set, so subsequent point reads miss and pay
disk latency.  This is the mechanism behind the paper's Fig. 3/Fig. 6
interference results, and behind the semantically-consistent-vs-stitch gap:
stitch-schema analytics mostly touch tables OLTP never reads, so their
evictions are harmless.

Pages are identified by ``(table_name, page_no)``.  The model is an ordinary
LRU over a bounded dict; batch access helpers keep large scans cheap to
simulate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class BufferPoolStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        total = self.accesses
        return self.hits / total if total else 1.0


class BufferPool:
    """Bounded LRU page cache with hit/miss accounting."""

    def __init__(self, capacity_pages: int, rows_per_page: int = 64):
        if capacity_pages <= 0:
            raise ValueError("buffer pool capacity must be positive")
        self.capacity = capacity_pages
        self.rows_per_page = rows_per_page
        self._pages: OrderedDict[tuple, None] = OrderedDict()
        self.stats = BufferPoolStats()

    def __contains__(self, page: tuple) -> bool:
        return page in self._pages

    def __len__(self):
        return len(self._pages)

    def access(self, page: tuple) -> bool:
        """Touch one page; returns True on hit."""
        if page in self._pages:
            self._pages.move_to_end(page)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._admit(page)
        return False

    def access_range(self, table: str, first_page: int, n_pages: int) -> int:
        """Touch ``n_pages`` consecutive pages of ``table``; returns misses.

        Ranges larger than the pool are short-circuited: everything past the
        first ``capacity`` pages is necessarily a miss and only the *last*
        ``capacity`` pages remain resident — the classic scan-flood pattern.
        """
        misses = 0
        if n_pages <= 0:
            return 0
        if n_pages >= self.capacity:
            # Whole pool is flushed; count residency of the first window only.
            resident = sum(
                1 for p in range(first_page, first_page + self.capacity)
                if (table, p) in self._pages
            )
            misses = n_pages - resident
            self.stats.hits += resident
            self.stats.misses += misses
            self.stats.evictions += len(self._pages)
            self._pages.clear()
            start = first_page + n_pages - self.capacity
            for p in range(start, first_page + n_pages):
                self._pages[(table, p)] = None
            return misses
        for p in range(first_page, first_page + n_pages):
            if not self.access((table, p)):
                misses += 1
        return misses

    def rows_to_pages(self, rows: int) -> int:
        """How many pages ``rows`` sequential rows span."""
        if rows <= 0:
            return 0
        return (rows + self.rows_per_page - 1) // self.rows_per_page

    def _admit(self, page: tuple):
        if len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        self._pages[page] = None

    def reset_stats(self):
        self.stats = BufferPoolStats()
