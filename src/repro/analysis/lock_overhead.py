"""Lock-overhead analysis (paper §V-B1, equation 2, Fig. 4).

The paper samples lock functions with perf and reports

    NLO = (LS / TS) / BLO * 100%

where LS is lock samples, TS total samples, and BLO the baseline lock
overhead measured without analytical interference.  Our simulator gives the
same quantities exactly: lock-wait milliseconds (time threads spend in lock
functions) over total busy milliseconds, normalised to a baseline run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runner import RunReport


@dataclass(frozen=True)
class LockOverhead:
    """Raw lock overhead of one run: lock time over total busy time."""

    lock_ms: float
    busy_ms: float

    @property
    def ratio(self) -> float:
        if self.busy_ms <= 0:
            return 0.0
        return self.lock_ms / self.busy_ms


def lock_overhead(report: RunReport,
                  per_acquisition_ms: float = 0.002) -> LockOverhead:
    """Lock overhead of one run.

    Lock time = simulated lock-wait time plus a fixed per-acquisition cost
    (the syscall/atomic cost of the mutex/futex/spinlock path the paper's
    perf profile counts even when uncontended).
    """
    lock_ms = report.lock_wait_ms + report.lock_acquisitions * \
        per_acquisition_ms
    busy_ms = sum(report.busy_ms.values())
    return LockOverhead(lock_ms=lock_ms, busy_ms=busy_ms)


def normalised_lock_overhead(report: RunReport, baseline: RunReport,
                             per_acquisition_ms: float = 0.002) -> float:
    """NLO: this run's lock overhead over the baseline's (1.0 = baseline)."""
    base = lock_overhead(baseline, per_acquisition_ms).ratio
    if base <= 0:
        return 0.0
    return lock_overhead(report, per_acquisition_ms).ratio / base
