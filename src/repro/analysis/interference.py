"""OLTP/OLAP mutual-interference analysis (paper §VI, control-variate method).

The paper divides transactional/analytical request rates into four
numerically increasing groups and, holding one class's rate fixed, sweeps
the other from zero to peak.  ``InterferenceMatrix`` holds such a grid of
run reports and computes the headline quantities the paper reports:
throughput degradation (e.g. "transactional throughput plummets up to 89%")
and latency inflation (e.g. "average latency increases by up to 17.4x").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runner import RunReport


@dataclass
class InterferenceCell:
    """One grid point: the rates applied and what was measured."""

    primary_rate: float
    secondary_rate: float
    throughput: float
    avg_latency_ms: float
    p95_latency_ms: float


@dataclass
class InterferenceMatrix:
    """Grid of measurements for one victim class under an aggressor class.

    ``primary`` is the victim whose throughput/latency is observed;
    ``secondary`` is the aggressor whose rate is swept.
    """

    primary: str   # "oltp" | "olap" | "hybrid"
    secondary: str
    cells: list = field(default_factory=list)

    def add(self, report: RunReport, primary_rate: float,
            secondary_rate: float):
        summary = report.latency(self.primary)
        self.cells.append(InterferenceCell(
            primary_rate=primary_rate,
            secondary_rate=secondary_rate,
            throughput=report.throughput(self.primary),
            avg_latency_ms=summary.mean,
            p95_latency_ms=summary.p95,
        ))

    # -- headline quantities ---------------------------------------------------

    def _cells_at_primary(self, primary_rate: float) -> list:
        return [c for c in self.cells if c.primary_rate == primary_rate]

    def throughput_drop(self, primary_rate: float) -> float:
        """Max fractional throughput loss vs the zero-aggressor cell."""
        cells = self._cells_at_primary(primary_rate)
        baseline = next((c for c in cells if c.secondary_rate == 0), None)
        if baseline is None or baseline.throughput <= 0:
            return 0.0
        worst = min(c.throughput for c in cells)
        return 1.0 - worst / baseline.throughput

    def latency_inflation(self, primary_rate: float) -> float:
        """Max avg-latency multiple vs the zero-aggressor cell."""
        cells = self._cells_at_primary(primary_rate)
        baseline = next((c for c in cells if c.secondary_rate == 0), None)
        if baseline is None or baseline.avg_latency_ms <= 0:
            return 1.0
        worst = max(c.avg_latency_ms for c in cells)
        return worst / baseline.avg_latency_ms

    def p95_inflation(self, primary_rate: float) -> float:
        cells = self._cells_at_primary(primary_rate)
        baseline = next((c for c in cells if c.secondary_rate == 0), None)
        if baseline is None or baseline.p95_latency_ms <= 0:
            return 1.0
        worst = max(c.p95_latency_ms for c in cells)
        return worst / baseline.p95_latency_ms

    def worst_throughput_drop(self) -> float:
        rates = {c.primary_rate for c in self.cells}
        return max((self.throughput_drop(r) for r in rates), default=0.0)

    def worst_latency_inflation(self) -> float:
        rates = {c.primary_rate for c in self.cells}
        return max((self.latency_inflation(r) for r in rates), default=1.0)

    def rows(self) -> list[tuple]:
        """(primary_rate, secondary_rate, throughput, avg, p95) tuples,
        sorted — the raw series behind Figs. 7-9."""
        return sorted(
            (c.primary_rate, c.secondary_rate, c.throughput,
             c.avg_latency_ms, c.p95_latency_ms)
            for c in self.cells
        )
