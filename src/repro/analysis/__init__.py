"""Analysis tools: Little's law, lock overhead, interference, scaling."""

from repro.analysis.freshness import (
    FreshnessProbe,
    FreshnessSample,
    replication_lag_records,
    staleness_ms,
)
from repro.analysis.interference import InterferenceCell, InterferenceMatrix
from repro.analysis.littles_law import (
    LoadPoint,
    arrival_rate_for,
    average_in_flight,
    latency_for,
)
from repro.analysis.lock_overhead import (
    LockOverhead,
    lock_overhead,
    normalised_lock_overhead,
)
from repro.analysis.scaling import ScalingPoint, ScalingStudy

__all__ = [
    "FreshnessProbe",
    "FreshnessSample",
    "replication_lag_records",
    "staleness_ms",
    "InterferenceCell",
    "InterferenceMatrix",
    "LoadPoint",
    "arrival_rate_for",
    "average_in_flight",
    "latency_for",
    "LockOverhead",
    "lock_overhead",
    "normalised_lock_overhead",
    "ScalingPoint",
    "ScalingStudy",
]
