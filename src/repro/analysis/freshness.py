"""Data-freshness analysis.

The paper's core argument is that the value of data decays with time and
that HTAP systems exist to let analytics see *fresh* transactional data.
This module quantifies freshness for a simulated TiDB-style engine:

* ``replication_lag_records`` — how many committed writes the columnar
  replica has not applied yet;
* ``staleness_ms`` — how long ago the newest replicated write was
  committed, given the write arrival rate;
* ``FreshnessProbe`` — samples lag over a run to produce the freshness
  series behind routing decisions (TiFlash is used only while lag stays
  under the engine's freshness limit).
"""

from __future__ import annotations

from dataclasses import dataclass, field


def replication_lag_records(engine) -> float:
    """Current replication lag of ``engine`` in log records (0 when the
    engine has no columnar replica)."""
    if engine.replication is None:
        return 0.0
    return engine.replication.lag(engine.db.storage.wal_head)


def staleness_ms(lag_records: float, write_rate_per_ms: float) -> float:
    """Approximate age of the replica's view: how long the current write
    rate needs to produce ``lag_records`` records."""
    if lag_records <= 0:
        return 0.0
    if write_rate_per_ms <= 0:
        return float("inf")
    return lag_records / write_rate_per_ms


@dataclass
class FreshnessSample:
    time_ms: float
    lag_records: float
    columnar_eligible: bool


@dataclass
class FreshnessProbe:
    """Collects lag samples from an engine during a run."""

    engine: object
    samples: list = field(default_factory=list)

    def sample(self, now_ms: float) -> FreshnessSample:
        self.engine.tick(now_ms)
        lag = replication_lag_records(self.engine)
        eligible = self.engine.route_analytical(now_ms)
        record = FreshnessSample(now_ms, lag, eligible)
        self.samples.append(record)
        return record

    @property
    def max_lag(self) -> float:
        return max((s.lag_records for s in self.samples), default=0.0)

    @property
    def columnar_availability(self) -> float:
        """Fraction of samples where analytics could use the replica."""
        if not self.samples:
            return 1.0
        eligible = sum(1 for s in self.samples if s.columnar_eligible)
        return eligible / len(self.samples)

    def time_to_catch_up(self) -> float:
        """Simulated ms needed to drain the current lag at the apply rate
        (infinity when the engine has no replica)."""
        if self.engine.replication is None:
            return 0.0
        lag = replication_lag_records(self.engine)
        rate = self.engine.replication.apply_rate
        if lag <= 0:
            return 0.0
        return lag / rate
