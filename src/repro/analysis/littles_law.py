"""Little's Law utilities (paper §V-B1, equation 1).

The paper uses L = λW to argue that load stress on the system under test is
governed by the average number of in-flight requests L — not by whether the
generator is open- or closed-loop — so normalising by a fixed L makes the
OLxPBench-vs-CH-benCHmark schema comparison fair.
"""

from __future__ import annotations

from dataclasses import dataclass


def average_in_flight(arrival_rate_per_s: float, avg_latency_ms: float) -> float:
    """L = λW: mean number of requests resident in the system."""
    if arrival_rate_per_s < 0 or avg_latency_ms < 0:
        raise ValueError("rate and latency must be non-negative")
    return arrival_rate_per_s * (avg_latency_ms / 1000.0)


def arrival_rate_for(target_in_flight: float, avg_latency_ms: float) -> float:
    """λ = L / W: the rate that sustains a target number in flight."""
    if avg_latency_ms <= 0:
        raise ValueError("latency must be positive")
    return target_in_flight / (avg_latency_ms / 1000.0)


def latency_for(target_in_flight: float, arrival_rate_per_s: float) -> float:
    """W = L / λ (milliseconds)."""
    if arrival_rate_per_s <= 0:
        raise ValueError("rate must be positive")
    return (target_in_flight / arrival_rate_per_s) * 1000.0


@dataclass(frozen=True)
class LoadPoint:
    """One measured operating point, with its Little's-law residual."""

    arrival_rate_per_s: float
    avg_latency_ms: float
    measured_in_flight: float | None = None

    @property
    def predicted_in_flight(self) -> float:
        return average_in_flight(self.arrival_rate_per_s, self.avg_latency_ms)

    @property
    def residual(self) -> float | None:
        """measured - predicted L (None when nothing was measured)."""
        if self.measured_in_flight is None:
            return None
        return self.measured_in_flight - self.predicted_in_flight
