"""Scale-out analysis (paper §VI-E, Fig. 10).

Collects per-cluster-size run reports and computes the latency growth
factors the paper reports: how average and 95th-percentile OLTP / OLxP
latency change as the cluster grows from 4 to 16 nodes, with data size and
request rates rising proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runner import RunReport


@dataclass
class ScalingPoint:
    nodes: int
    kind: str
    avg_latency_ms: float
    p95_latency_ms: float
    throughput: float


@dataclass
class ScalingStudy:
    """Latency-vs-cluster-size series for one engine."""

    engine: str
    points: list = field(default_factory=list)

    def add(self, nodes: int, kind: str, report: RunReport,
            request_class: str | None = None):
        """Record one point; ``kind`` is the series label, ``request_class``
        the report class to read (defaults to the label)."""
        cls = request_class or kind
        summary = report.latency(cls)
        self.points.append(ScalingPoint(
            nodes=nodes,
            kind=kind,
            avg_latency_ms=summary.mean,
            p95_latency_ms=summary.p95,
            throughput=report.throughput(cls),
        ))

    def series(self, kind: str) -> list[ScalingPoint]:
        return sorted((p for p in self.points if p.kind == kind),
                      key=lambda p: p.nodes)

    def growth(self, kind: str, metric: str = "avg_latency_ms") -> float:
        """Latency at the largest size over latency at the smallest size."""
        series = self.series(kind)
        if len(series) < 2:
            return 1.0
        first = getattr(series[0], metric)
        last = getattr(series[-1], metric)
        if first <= 0:
            return 1.0
        return last / first
