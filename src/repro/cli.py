"""Command-line interface.

Mirrors how the paper's Java client is driven — a config file names the
workload, rates and SUT options; the tool runs the benchmark and stores the
statistics report::

    python -m repro list
    python -m repro run --workload fibenchmark --engine tidb \\
        --oltp-rate 200 --olap-rate 1 --duration-ms 2000 --out report.txt
    python -m repro run --config config.xml --engine memsql
    python -m repro inspect subenchmark
"""

from __future__ import annotations

import argparse
import sys

from repro.core import BenchConfig, OLxPBench
from repro.core.report import render_markdown, render_text, write_report
from repro.engines import ENGINES, make_engine
from repro.workloads import make_workload, workload_names


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OLxPBench reproduction: HTAP benchmarking on "
                    "simulated distributed HTAP DBMSs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads and engines")

    inspect = sub.add_parser("inspect",
                             help="show a workload's Table II features")
    inspect.add_argument("workload", choices=workload_names())

    run = sub.add_parser("run", help="run one benchmark configuration")
    run.add_argument("--config", help="XML configuration file (values on "
                                      "the command line override it)")
    run.add_argument("--workload", choices=workload_names())
    run.add_argument("--engine", default="tidb",
                     choices=sorted(ENGINES))
    run.add_argument("--nodes", type=int, default=4)
    run.add_argument("--mode", choices=("sequential", "concurrent",
                                        "hybrid"))
    run.add_argument("--loop", choices=("open", "closed"))
    run.add_argument("--oltp-rate", type=float)
    run.add_argument("--olap-rate", type=float)
    run.add_argument("--hybrid-rate", type=float)
    run.add_argument("--duration-ms", type=float)
    run.add_argument("--warmup-ms", type=float)
    run.add_argument("--scale", type=float)
    run.add_argument("--seed", type=int)
    run.add_argument("--markdown", action="store_true",
                     help="print a Markdown table instead of text")
    run.add_argument("--out", help="also write the report to this file")
    return parser


_CONFIG_FIELDS = {
    "workload": "workload", "mode": "mode", "loop": "loop",
    "oltp_rate": "oltp_rate", "olap_rate": "olap_rate",
    "hybrid_rate": "hybrid_rate", "duration_ms": "duration_ms",
    "warmup_ms": "warmup_ms", "scale": "scale", "seed": "seed",
}


def _config_from_args(args) -> BenchConfig:
    if args.config:
        config = BenchConfig.from_xml(args.config)
    else:
        config = BenchConfig()
    overrides = {}
    for arg_name, field in _CONFIG_FIELDS.items():
        value = getattr(args, arg_name, None)
        if value is not None:
            overrides[field] = value
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    return config


def cmd_list() -> int:
    print("workloads:")
    for name in workload_names():
        workload = make_workload(name)
        print(f"  {name:<14} domain={workload.domain:<8} "
              f"semantically_consistent={workload.semantically_consistent}")
    print("engines:")
    for name in sorted(ENGINES):
        engine = make_engine(name)
        info = engine.info()
        print(f"  {name:<14} columnar={info.has_columnar_store} "
              f"foreign_keys={info.supports_foreign_keys} "
              f"isolation={info.isolation.value}")
    return 0


def cmd_inspect(workload_name: str) -> int:
    workload = make_workload(workload_name)
    summary = workload.feature_summary()
    width = max(len(k) for k in summary)
    for key, value in summary.items():
        if isinstance(value, float):
            value = f"{value:.2f}"
        print(f"{key:<{width}}  {value}")
    for kind, label in (("oltp", "online transactions"),
                        ("olap", "analytical queries"),
                        ("hybrid", "hybrid transactions")):
        names = ", ".join(p.name for p in workload.profiles(kind))
        print(f"{label}: {names or '(none)'}")
    return 0


def cmd_run(args) -> int:
    config = _config_from_args(args)
    engine = make_engine(args.engine, nodes=args.nodes)
    workload = make_workload(config.workload)
    print(f"installing {config.workload} (scale {config.scale}) on "
          f"{engine.name} ({engine.nodes} nodes)...", file=sys.stderr)
    bench = OLxPBench(engine, workload, scale=config.scale,
                      seed=config.seed)
    report = bench.run(config)
    if args.markdown:
        print(render_markdown(report))
    else:
        print(render_text(report, per_transaction=True))
    if args.out:
        write_report(report, args.out)
        print(f"report written to {args.out}", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "inspect":
        return cmd_inspect(args.workload)
    if args.command == "run":
        return cmd_run(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
