"""The logical-execution/timing interface.

A ``WorkResult`` is what the benchmark session hands to the engine's timing
model after a transaction's logic has executed against the embedded
database: execution statistics split into the *online* part and the
*real-time query* part (hybrid transactions), the write set (for simulated
lock waits), and statement counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.result import ExecStats


@dataclass
class WorkResult:
    """Outcome of one logically-executed transaction."""

    kind: str                      # "oltp" | "olap" | "hybrid"
    name: str                      # transaction / query identifier
    stats: ExecStats = field(default_factory=ExecStats)
    realtime_stats: ExecStats | None = None
    n_statements: int = 0
    n_realtime_statements: int = 0
    write_keys: frozenset = frozenset()
    aborted: bool = False
    retries: int = 0
    # hash partitions the commit touched (() when read-only/aborted);
    # more than one participant means a two-phase distributed commit
    commit_partitions: tuple = ()

    @property
    def multi_partition_commit(self) -> bool:
        return len(self.commit_partitions) > 1

    @property
    def read_only(self) -> bool:
        return not self.write_keys

    def combined_stats(self) -> ExecStats:
        total = ExecStats()
        total.merge(self.stats)
        if self.realtime_stats is not None:
            total.merge(self.realtime_stats)
        return total
