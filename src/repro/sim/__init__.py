"""Discrete-event cluster simulation and per-engine cost models."""

from repro.sim.cluster import (
    BufferPoolModel,
    LatencyBreakdown,
    LockTable,
    NodeGroup,
    ReplicationState,
)
from repro.sim.costmodel import (
    MEMSQL_COSTS,
    OCEANBASE_COSTS,
    TIDB_COSTS,
    CostBreakdown,
    CostModel,
    CostParams,
)

__all__ = [
    "BufferPoolModel",
    "LatencyBreakdown",
    "LockTable",
    "NodeGroup",
    "ReplicationState",
    "CostBreakdown",
    "CostModel",
    "CostParams",
    "TIDB_COSTS",
    "MEMSQL_COSTS",
    "OCEANBASE_COSTS",
]
