"""Discrete-event cluster timing model.

The execute-then-time design: transactions run *logically* against the
embedded database the moment they are dispatched (wall-clock instantaneous,
single-threaded, deterministic), and this module assigns them *simulated*
latency:

    latency = queue wait at the target node group
            + lock waits behind in-flight writers of the same rows
            + CPU service demand (from the cost model)
            + buffer-pool miss IO
            + network hops

Measuring in simulated time sidesteps the GIL entirely — the paper's
throughput/latency shapes come out of queueing, lock holding, buffer-pool
eviction and replication lag, all modelled explicitly here.

``NodeGroup`` models ``nodes x cores`` FIFO servers with a heap of
core-free times.  ``LockTable`` tracks, per row, when the last simulated
holder releases it.  Requests must be submitted in nondecreasing arrival
order (the runner guarantees this).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.storage.bufferpool import BufferPool


class NodeGroup:
    """A pool of identical nodes; each node has ``cores`` FIFO servers."""

    def __init__(self, name: str, nodes: int, cores_per_node: int):
        if nodes <= 0 or cores_per_node <= 0:
            raise ValueError("node group needs at least one node and core")
        self.name = name
        self.nodes = nodes
        self.cores_per_node = cores_per_node
        self._free = [0.0] * (nodes * cores_per_node)
        heapq.heapify(self._free)
        self.busy_ms = 0.0
        self.requests = 0

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def admit(self, arrival: float, demand: float,
              extra_hold: float = 0.0) -> tuple[float, float]:
        """Admit one request; returns ``(start, completion)``.

        ``extra_hold`` extends the core occupancy past the CPU demand (lock
        waits where the serving thread blocks while holding its core, as a
        JDBC worker thread does).
        """
        core_free = heapq.heappop(self._free)
        start = max(arrival, core_free)
        completion = start + demand + extra_hold
        heapq.heappush(self._free, completion)
        self.busy_ms += demand + extra_hold
        self.requests += 1
        return start, completion

    def earliest_start(self, arrival: float) -> float:
        """When a request arriving at ``arrival`` would begin service."""
        return max(arrival, self._free[0])

    def utilisation(self, horizon_ms: float) -> float:
        if horizon_ms <= 0:
            return 0.0
        return min(1.0, self.busy_ms / (horizon_ms * self.total_cores))

    def reset(self):
        self._free = [0.0] * self.total_cores
        heapq.heapify(self._free)
        self.busy_ms = 0.0
        self.requests = 0


class LockTable:
    """Simulated row-lock release times.

    ``wait_and_hold(keys, start, completion)`` returns how long a request
    starting service at ``start`` must wait for the rows in ``keys``, and
    registers the request as the new holder until ``completion``.
    """

    def __init__(self):
        self._release: dict = {}
        self.total_wait_ms = 0.0
        self.waits = 0
        self.acquisitions = 0

    def wait_for(self, keys, start: float) -> float:
        latest = 0.0
        for key in keys:
            release = self._release.get(key, 0.0)
            if release > latest:
                latest = release
        return max(0.0, latest - start)

    def hold(self, keys, until: float):
        for key in keys:
            self._release[key] = until
        self.acquisitions += len(keys)

    def wait_and_hold(self, keys, start: float, service: float) -> float:
        """Returns the lock wait; holders release at start+wait+service."""
        wait = self.wait_for(keys, start)
        if wait > 0:
            self.waits += 1
            self.total_wait_ms += wait
        self.hold(keys, start + wait + service)
        return wait

    def reset(self):
        self._release.clear()
        self.total_wait_ms = 0.0
        self.waits = 0
        self.acquisitions = 0


class ReplicationState:
    """Asynchronous log replication progress (TiFlash-style).

    The replica applies ``apply_rate`` log records per simulated millisecond.
    ``advance(now, wal_head)`` moves the applied watermark forward;
    ``lag(wal_head)`` says how many records the replica is behind, which the
    router uses as the freshness gate for columnar routing.
    """

    def __init__(self, apply_rate_per_ms: float):
        self.apply_rate = apply_rate_per_ms
        self.applied = 0.0
        self._last_advance = 0.0

    def advance(self, now_ms: float, wal_head: int):
        if now_ms > self._last_advance:
            budget = (now_ms - self._last_advance) * self.apply_rate
            self.applied = min(float(wal_head), self.applied + budget)
            self._last_advance = now_ms

    def lag(self, wal_head: int) -> float:
        return max(0.0, float(wal_head) - self.applied)

    def reset(self):
        self.applied = 0.0
        self._last_advance = 0.0


@dataclass
class LatencyBreakdown:
    """Where one request's simulated latency went."""

    queue_wait: float = 0.0
    lock_wait: float = 0.0
    service: float = 0.0
    io: float = 0.0
    network: float = 0.0

    @property
    def total(self) -> float:
        return (self.queue_wait + self.lock_wait + self.service
                + self.io + self.network)


@dataclass
class BufferPoolModel:
    """Buffer pool attached to a node group (the shared row store)."""

    pool: BufferPool
    # pseudo page-number cursors so distinct scans touch distinct ranges
    _scan_cursor: dict = field(default_factory=dict)

    def charge_scan(self, table: str, rows: int) -> tuple[int, int, bool]:
        """A sequential scan of ``rows`` rows; returns (misses, hits,
        flooded) where flooded means the scan displaced the whole pool."""
        pages = self.pool.rows_to_pages(rows)
        if pages == 0:
            return 0, 0, False
        misses = self.pool.access_range(table, 0, pages)
        # a scan displacing half the pool effectively destroys the resident
        # working set, so it counts as a flood
        return misses, pages - misses, pages >= self.pool.capacity // 2

    def charge_point(self, table: str, rows: int, spread: int) -> tuple[int, int]:
        """Point accesses into a table of ``spread`` rows; LRU decides.

        OLTP point reads are skewed (TPC-C's NURand, TATP's hot subscribers),
        so the effective working set is a fraction of the table: we probe a
        quarter of the table's pages, deterministically strided.
        """
        misses = 0
        hits = 0
        if rows <= 0:
            return 0, 0
        pages = max(1, self.pool.rows_to_pages(spread) // 4)
        cursor = self._scan_cursor.get(table, 0)
        for i in range(rows):
            page = (cursor + i * 7919) % pages  # deterministic stride probe
            if self.pool.access((table, page)):
                hits += 1
            else:
                misses += 1
        self._scan_cursor[table] = cursor + rows
        return misses, hits
