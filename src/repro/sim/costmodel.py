"""Cost model: ExecStats -> simulated service demand (milliseconds).

Every statement executes *logically* against the embedded engine, producing
``ExecStats`` (rows scanned per store, lookups, join/sort/aggregate volumes,
writes).  The cost model converts those counts into CPU service demand for
the discrete-event simulator.  Each simulated engine (TiDB-like,
MemSQL-like, OceanBase-like) carries its own ``CostParams`` — that is where
hardware differences live (in-memory vs SSD, columnar scan speed, vertical
partitioning join amplification, distributed-commit overheads).

The constants are calibration knobs, documented in DESIGN.md; the shapes of
the paper's results come from the *mechanisms* (shared queues, buffer-pool
eviction, lock holding, replication lag), not from the absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sql.result import ExecStats


@dataclass(frozen=True)
class CostParams:
    """Per-engine cost constants, all in milliseconds unless noted."""

    # per-statement fixed overhead (parse/plan/dispatch inside the cluster)
    stmt_overhead: float = 0.08
    # per-transaction fixed overhead (begin + commit, replication, quorum)
    txn_overhead: float = 0.7
    # row-store access costs
    pk_lookup: float = 0.035
    index_lookup: float = 0.05
    row_scan_row_store: float = 0.0035
    # columnar access costs (vectorised scans are much cheaper per row)
    row_scan_columnar: float = 0.00035
    # relational operator costs
    join_per_row: float = 0.0012
    join_op: float = 0.05
    sort_per_row: float = 0.0015
    agg_per_row: float = 0.0008
    # write path
    write_per_row: float = 0.045
    # delta–main replica maintenance: ordered compaction re-sorts and
    # re-encodes rows in the background (charged to the columnar group per
    # merge), and every scan of a lagging sorted replica pays a small
    # per-row premium for its delta-overlay rows — they sit in plain,
    # unencoded tail segments (and ordered scans additionally interleave
    # them), so they cost more than encoded main rows
    compaction_per_row: float = 0.0008
    delta_merge_per_row: float = 0.0007
    # storage characteristics
    page_miss_penalty: float = 0.12   # random read on a miss (SSD ~ 0.1ms)
    # sequential scans benefit from readahead: far cheaper per page
    scan_page_cost: float = 0.02
    page_hit_cost: float = 0.0005
    network_hop: float = 0.25         # one cluster-internal RPC
    # vertical-partitioning amplification applied to joins/scans inside
    # hybrid transactions (MemSQL's single-engine handling of OLxP)
    hybrid_join_amplification: float = 1.0
    # fixed cost of launching an analytical job on the columnar engine
    # (TiSpark task dispatch in TiDB's case)
    columnar_stmt_overhead: float = 0.0
    # retry penalty for aborted transactions
    abort_penalty: float = 0.5
    # admission-queue dispatch: checking slots, enqueueing and waking a
    # session costs a little on every admitted request (the front-end
    # server charges it on top of the engine's service demand)
    admission_overhead: float = 0.02

    def scaled(self, factor: float) -> "CostParams":
        """A uniformly scaled copy (used for per-node-count penalties)."""
        return replace(
            self,
            stmt_overhead=self.stmt_overhead * factor,
            txn_overhead=self.txn_overhead * factor,
            network_hop=self.network_hop * factor,
        )


@dataclass
class CostBreakdown:
    """Where a request's service demand came from (for reports/ablations)."""

    cpu: float = 0.0
    io: float = 0.0
    network: float = 0.0

    @property
    def total(self) -> float:
        return self.cpu + self.io + self.network


class CostModel:
    """Maps execution statistics to service demand for one engine."""

    def __init__(self, params: CostParams):
        self.params = params

    def statement_cost(self, stats: ExecStats, hybrid_context: bool = False,
                       columnar_parallelism: int = 1,
                       columnar_scan_factor: float = 1.0) -> CostBreakdown:
        """CPU demand of one statement's relational work (no queueing/IO).

        ``columnar_parallelism`` models partition-parallel scatter-gather:
        a columnar scan fanned out over N partitions on distinct nodes
        finishes in ~1/N of the serial scan time (the per-partition partial
        aggregates divide the same way), so the critical-path demand for
        the columnar scan and aggregate components is divided by it.

        ``columnar_scan_factor`` scales the per-row columnar scan demand by
        the replica's *measured* compression ratio (encoded/plain bytes,
        <= 1.0): dictionary codes and typed arrays move fewer bytes per
        row, so encoded scans are proportionally cheaper — the mechanism
        the Fig. 1/5/6/10 simulations inherit from the encoding layer.
        """
        p = self.params
        amplify = p.hybrid_join_amplification if hybrid_context else 1.0
        parallel = max(1, columnar_parallelism)
        scan_factor = min(1.0, max(0.0, columnar_scan_factor))
        cpu = p.stmt_overhead
        if stats.used_columnar:
            cpu += p.columnar_stmt_overhead
        cpu += sum(stats.rows_row_store.values()) * p.row_scan_row_store * \
            (amplify if hybrid_context else 1.0)
        cpu += sum(stats.rows_columnar.values()) * p.row_scan_columnar \
            * scan_factor / parallel
        cpu += stats.pk_lookups * p.pk_lookup
        cpu += stats.index_lookups * p.index_lookup
        cpu += stats.index_range_scans * p.index_lookup
        cpu += stats.join_ops * p.join_op * amplify
        cpu += stats.rows_joined * p.join_per_row * amplify
        # an elided sort contributes no sort_rows: ordered scans replace
        # the materialising sort with a streaming merge, whose demand is
        # the per-row delta-overlay charge below
        cpu += stats.sort_rows * p.sort_per_row
        cpu += stats.delta_rows_pending * p.delta_merge_per_row / parallel
        agg_parallel = parallel if stats.partial_aggregates else 1
        cpu += stats.agg_input_rows * p.agg_per_row / agg_parallel
        cpu += stats.total_writes * p.write_per_row
        return CostBreakdown(cpu=cpu)

    def transaction_cost(self, stats: ExecStats, n_statements: int,
                         hybrid_context: bool = False,
                         columnar_parallelism: int = 1,
                         columnar_scan_factor: float = 1.0) -> CostBreakdown:
        """CPU demand of a whole transaction (statement work + txn overhead)."""
        breakdown = self.statement_cost(stats, hybrid_context,
                                        columnar_parallelism,
                                        columnar_scan_factor)
        breakdown.cpu += self.params.txn_overhead
        breakdown.cpu += max(0, n_statements - 1) * self.params.stmt_overhead
        return breakdown

    def compaction_cost(self, rows_merged: int) -> float:
        """CPU demand of one ordered-compaction merge (background work
        charged to the columnar node group, not to any statement)."""
        return rows_merged * self.params.compaction_per_row

    def io_cost(self, page_misses: int, page_hits: int,
                scan_misses: int = 0) -> float:
        """IO time: random point misses, cache hits, sequential scan misses."""
        return (page_misses * self.params.page_miss_penalty
                + page_hits * self.params.page_hit_cost
                + scan_misses * self.params.scan_page_cost)

    def network_cost(self, hops: int) -> float:
        return hops * self.params.network_hop


# -- default per-engine calibrations ----------------------------------------
#
# Grounding for the deltas (see paper §VI-D):
#  * MemSQL processes data in memory -> negligible page-miss penalty, lower
#    per-row costs; TiDB reads from SSD -> real page-miss penalty.
#  * MemSQL's vertical partitioning turns relationship queries inside hybrid
#    transactions into many joins -> large hybrid amplification.
#  * OceanBase is shared-nothing with cheaper coordination at small sizes.

TIDB_COSTS = CostParams(
    stmt_overhead=0.10,
    txn_overhead=1.4,
    pk_lookup=0.05,
    index_lookup=0.07,
    row_scan_row_store=0.0045,
    row_scan_columnar=0.00035,
    join_per_row=0.0012,
    sort_per_row=0.0015,
    agg_per_row=0.0008,
    write_per_row=0.06,
    # a TiKV page miss is an RPC to the storage layer plus an SSD random
    # read, so it is an order of magnitude above the raw device latency
    page_miss_penalty=3.0,
    scan_page_cost=0.12,
    network_hop=0.3,
    hybrid_join_amplification=1.0,
    # TiSpark launches a distributed job per analytical query
    columnar_stmt_overhead=120.0,
)

MEMSQL_COSTS = CostParams(
    stmt_overhead=0.05,
    txn_overhead=0.45,
    pk_lookup=0.018,
    index_lookup=0.028,
    row_scan_row_store=0.0016,
    row_scan_columnar=0.0005,
    join_per_row=0.0011,
    sort_per_row=0.0012,
    agg_per_row=0.0007,
    write_per_row=0.02,
    page_miss_penalty=0.002,   # in-memory: misses are effectively free
    scan_page_cost=0.002,
    network_hop=0.22,
    hybrid_join_amplification=9.0,
)

OCEANBASE_COSTS = CostParams(
    stmt_overhead=0.09,
    txn_overhead=1.1,
    pk_lookup=0.045,
    index_lookup=0.06,
    row_scan_row_store=0.004,
    row_scan_columnar=0.004,   # no columnar replica: scans stay row-major
    join_per_row=0.0012,
    sort_per_row=0.0015,
    agg_per_row=0.0008,
    write_per_row=0.055,
    page_miss_penalty=0.8,
    scan_page_cost=0.1,
    network_hop=0.28,
    hybrid_join_amplification=1.6,
)
