"""Embedded database: the engine every simulated cluster executes against."""

from repro.db.database import Connection, Database

__all__ = ["Connection", "Database"]
