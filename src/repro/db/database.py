"""Embedded database facade.

``Database`` wires the catalog, MVCC row store, optional columnar replica,
transaction manager, planner and executor into a single engine with a
driver-like API::

    db = Database(with_columnar=True)
    db.execute_ddl("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    with db.connect() as conn:
        conn.execute("INSERT INTO t (id, v) VALUES (?, ?)", (1, 10))
        conn.commit()
        result = conn.execute("SELECT v FROM t WHERE id = ?", (1,))

Statements are prepared once per SQL string and cached database-wide in a
bounded LRU (``plan_cache_size``), so the benchmark loop never re-parses its
workload statements; hits/misses surface in each statement's ``ExecStats``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.catalog.schema import Catalog, Column, ForeignKey, IndexDef, Table
from repro.catalog.types import type_from_name
from repro.errors import (
    CatalogError,
    ConfigError,
    ConnectionStateError,
    ReplicaUnavailableError,
    SQLError,
    TransientError,
    UnsupportedFeatureError,
)
from repro.fault import CircuitBreaker, FailpointRegistry
from repro.sql import ast
from repro.sql.executor import Executor
from repro.sql.parser import parse_sql
from repro.sql.planner import Planner, SelectPlan
from repro.sql.result import DMLResult, Result
from repro.storage.columnstore import SEGMENT_ROWS, ColumnarReplica
from repro.storage.partition import PartitionMap
from repro.storage.rowstore import RowStorage
from repro.txn.manager import IsolationLevel, Transaction, TransactionManager


class Database:
    """One logical database: catalog + storage + transactions + SQL.

    ``partitions`` hash-partitions every table (and the WAL and columnar
    replica with it) on its partition key — the first primary-key column.
    Partitioning redistributes data, not semantics: every deterministic
    query result (ORDER BY output, aggregates, point/prefix reads, any
    row-store scan) is identical for every partition count; only the
    SQL-undefined row order of *unordered* columnar-routed results follows
    partition concatenation order.  What partitioning changes is
    *placement*: PK access binds to one partition, commits are classified
    single- vs multi-partition, and columnar scans scatter-gather across
    the per-partition segment sets.
    """

    def __init__(self, enforce_foreign_keys: bool = False,
                 supports_foreign_keys: bool = True,
                 with_columnar: bool = False,
                 columnar_segment_rows: int | None = None,
                 columnar_encoding: bool = True,
                 sorted_compaction: bool = True,
                 shared_dicts: bool = True,
                 shared_dict_cardinality: int | None = None,
                 segment_sketches: bool = True,
                 sketch_budget_bytes: int | None = None,
                 sort_keys: dict[str, tuple[str, ...]] | None = None,
                 default_isolation: IsolationLevel = IsolationLevel.SNAPSHOT,
                 partitions: int = 1,
                 plan_cache_size: int = 256,
                 workers: int | None = 0,
                 failpoints: FailpointRegistry | None = None,
                 retain_wal: bool = False):
        if plan_cache_size <= 0:
            raise ValueError("plan_cache_size must be positive")
        self.catalog = Catalog()
        self.partition_map = PartitionMap(partitions)
        # one failpoint registry shared by every layer; unarmed it costs
        # one attribute read per seam.  retain_wal=True keeps applied WAL
        # prefixes instead of truncating them after replication — required
        # for recover() to rebuild the columnar replica from LSN 0.
        self.failpoints = failpoints if failpoints is not None \
            else FailpointRegistry()
        self.retain_wal = retain_wal
        self.storage = RowStorage(self.partition_map,
                                  failpoints=self.failpoints)
        # sorted_compaction=True (default) keeps the columnar replica in
        # the delta–main organisation: replication applies into plain
        # delta tails, compaction merges into sort-key-ordered encoded
        # main segments.  False preserves the arrival-order engine
        # byte-for-byte (the recorded A/B baseline).  sort_keys overrides
        # the per-table sort key (default: the primary key), e.g.
        # Database(sort_keys={"ORDER_LINE": ("OL_I_ID",)}).
        self.columnar_encoding = columnar_encoding
        self.sorted_compaction = sorted_compaction
        # shared_dicts=True (default) installs one table-level dictionary
        # per string column domain (FK columns alias the referenced
        # column's), built during compaction seals; joins, group-bys and
        # pushed predicates then run on global integer codes across
        # segments.  False preserves the per-segment-dictionary engine
        # byte-for-byte (the recorded A/B baseline).
        self.shared_dicts = shared_dicts and columnar_encoding
        # segment_sketches=True (default) lets sketch-eligible full-scan
        # aggregates fold cached per-segment exact partials instead of
        # rows; False is the byte-identical A/B baseline.
        # sketch_budget_bytes bounds the replica-wide sketch LRU.
        self.segment_sketches = segment_sketches and with_columnar
        self.sort_keys = {name.upper(): tuple(columns)
                          for name, columns in (sort_keys or {}).items()}
        # sort_keys names not yet matched by a created table: checked at
        # the first replication (schema complete by then), so a typo'd
        # table name fails loudly instead of silently falling back to
        # primary-key ordering
        self._unmatched_sort_keys = set(self.sort_keys)
        if with_columnar:
            self.columnar = ColumnarReplica(
                columnar_segment_rows if columnar_segment_rows is not None
                else SEGMENT_ROWS,
                partition_map=self.partition_map,
                encode=columnar_encoding,
                sorted_compaction=sorted_compaction,
                shared_dicts=self.shared_dicts,
                **({} if shared_dict_cardinality is None
                   else {"shared_dict_cardinality": shared_dict_cardinality}),
                **({} if sketch_budget_bytes is None
                   else {"sketch_budget_bytes": sketch_budget_bytes}),
                failpoints=self.failpoints,
            )
        else:
            self.columnar = None
        # circuit breaker for the replica scan path: transient replica
        # faults open it, and columnar-routed statements degrade to the
        # row pipeline until the replica heals (answers stay identical)
        self.replica_breaker = CircuitBreaker() if with_columnar else None
        self.degraded_statements_total = 0
        self.txn_manager = TransactionManager(self.storage,
                                              failpoints=self.failpoints)
        # columnar_encoding=False reverts the whole columnar path to the
        # pre-encoding engine (plain segments, prune-only pushdown): the
        # recorded A/B baseline the encoding benchmarks compare against
        self.planner = Planner(self.catalog,
                               build_vectorized=self.columnar is not None,
                               encoded_pushdown=columnar_encoding,
                               sorted_scan=(self.columnar is not None
                                            and sorted_compaction),
                               sort_keys=self.sort_keys,
                               shared_dicts=(self.columnar is not None
                                             and self.shared_dicts),
                               segment_sketches=self.segment_sketches)
        self.supports_foreign_keys = supports_foreign_keys
        self.enforce_foreign_keys = enforce_foreign_keys and supports_foreign_keys
        self.default_isolation = default_isolation
        # workers=0 (default) keeps the exact sequential engine — the
        # recorded A/B baseline.  workers=N (or None = CPU count) creates
        # the shared pool: partition scans scatter onto it with ordered
        # gather, and ordered compaction moves off the query path as a
        # background pool task.
        if workers == 0:
            self.pool = None
        else:
            from repro.exec import WorkerPool

            self.pool = WorkerPool(workers, failpoints=self.failpoints)
        self.bg_compactions_total = 0
        self.bg_compaction_failures = 0
        self.executor = Executor(
            self.catalog, self.columnar,
            enforce_foreign_keys=self.enforce_foreign_keys,
            partition_map=self.partition_map,
            pool=self.pool,
            failpoints=self.failpoints,
        )
        # bounded LRU keyed on SQL text: statements beyond the capacity
        # evict the least-recently-prepared plan instead of growing the
        # cache for the database's lifetime
        self._plan_cache: OrderedDict[str, object] = OrderedDict()
        # one mutex guards every LRU mutation (lookup move_to_end, insert,
        # eviction): OrderedDict reordering is not atomic, so interleaved
        # sessions on a real worker pool would otherwise corrupt the
        # recency chain.  Planning itself happens outside the lock.
        self._plan_cache_lock = threading.Lock()
        self.plan_cache_size = plan_cache_size
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.plan_cache_evictions = 0
        self.plan_cache_contention = 0

    @property
    def partitions(self) -> int:
        return self.partition_map.partitions

    # -- DDL -----------------------------------------------------------------

    def execute_ddl(self, sql: str):
        """Run one CREATE TABLE / CREATE INDEX / DROP TABLE statement."""
        statement = parse_sql(sql)
        if isinstance(statement, ast.CreateTable):
            self._create_table(statement)
        elif isinstance(statement, ast.CreateIndex):
            self._create_index(statement)
        elif isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.name)
            self.storage.drop_table(statement.name)
        else:
            raise SQLError(f"not a DDL statement: {sql!r}")
        self._plan_cache.clear()

    def run_script(self, script: str):
        """Run a ``;``-separated DDL script (blank statements ignored)."""
        for piece in script.split(";"):
            if piece.strip():
                self.execute_ddl(piece)

    def _create_table(self, statement: ast.CreateTable):
        if statement.foreign_keys and not self.supports_foreign_keys:
            raise UnsupportedFeatureError(
                f"this engine does not support FOREIGN KEY constraints "
                f"(table {statement.name!r}); use the no-FK schema variant"
            )
        columns = [
            Column(c.name, type_from_name(c.type_name, c.type_args or None),
                   nullable=c.nullable)
            for c in statement.columns
        ]
        fks = [ForeignKey(f.columns, f.ref_table, f.ref_columns)
               for f in statement.foreign_keys]
        table = Table(statement.name, columns, statement.primary_key, fks)
        self.create_table(table)

    def create_table(self, table: Table):
        """Register a table built programmatically."""
        self.catalog.create_table(table)
        self.storage.register_table(table)
        if self.columnar is not None:
            self.columnar.register_table(table, self._sort_positions(table))

    def _sort_positions(self, table: Table) -> tuple[int, ...] | None:
        """Column positions of the table's configured sort key (None keeps
        the replica default — the primary key)."""
        override = self.sort_keys.get(table.name.upper())
        if override is None:
            return None
        self._unmatched_sort_keys.discard(table.name.upper())
        return tuple(table.position(column) for column in override)

    def _create_index(self, statement: ast.CreateIndex):
        index = IndexDef(statement.name, statement.table,
                         tuple(statement.columns), statement.unique)
        self.create_index(index)

    def create_index(self, index: IndexDef):
        table = self.catalog.table(index.table)
        table.add_index(index)
        self.storage.store(index.table).create_index(index)

    # -- bulk loading (loader fast path) ----------------------------------------

    def bulk_load(self, table_name: str, rows) -> int:
        """Install fully-formed rows as one committed batch.

        Bypasses per-row transaction machinery (workload loaders insert many
        thousands of rows); still writes the WAL so the columnar replica can
        catch up.
        """
        from repro.storage.wal import LogOp

        table = self.catalog.table(table_name)
        commit_ts = self.txn_manager.allocate_commit_ts()
        count = 0
        writes = []
        for row in rows:
            values = tuple(row)
            if len(values) != len(table.columns):
                raise SQLError(
                    f"bulk_load row width {len(values)} != table width "
                    f"{len(table.columns)} for {table_name}"
                )
            writes.append((table.name, table.pk_of(values), values,
                           LogOp.INSERT))
            count += 1
        self.storage.apply_commit(commit_ts, writes)
        return count

    def replicate(self, limit: int | None = None) -> int:
        """Apply pending WAL records to the columnar replica.

        Partition streams are merged by global commit order, so a partial
        apply (``limit``) leaves the replica in exactly the state a
        single-stream log would have produced.  Applied prefixes are then
        compacted away (``truncate_upto``), bounding WAL memory by the
        replication lag instead of the database lifetime.
        """
        if self.columnar is None:
            return 0
        if self._unmatched_sort_keys:
            names = ", ".join(sorted(self._unmatched_sort_keys))
            raise CatalogError(
                f"sort_keys name(s) {names} match no created table — "
                f"fix the name or drop the entry (tables would silently "
                f"fall back to primary-key ordering otherwise)"
            )
        applied = self.columnar.apply_from_partitions(self.storage.wals,
                                                      limit)
        if applied == 0:
            # nothing new: no prefix to truncate, no demotions to re-encode
            # (this path runs once per simulated request via engine ticks)
            return 0
        if not self.retain_wal:
            for pid, wal in enumerate(self.storage.wals):
                wal.truncate_upto(self.columnar.applied_lsns[pid])
        if self.pool is not None and self.sorted_compaction:
            # ordered compaction moves off the query path: merge the fresh
            # delta eagerly (segment-granular, so cost is bounded by the
            # delta's key-range overlap) on a pool worker while queries
            # keep scanning their pre-swap segment snapshot
            self.bg_compactions_total += 1
            self.pool.submit_background(self._background_compact,
                                        name="columnar-compaction")
        else:
            # re-encode segments demoted by in-place overwrites this chunk
            self._compact_with_retry()
        return applied

    def _background_compact(self):
        """Pool-side compaction wrapper.

        A *transient* failure (injected fault, flaky merge) is absorbed:
        the unpublished merge left the old main + delta fully queryable,
        the delta stays pending, and the next ``replicate`` retries — a
        compaction fault must never poison the pool or fail a query.
        Non-transient exceptions propagate and are surfaced, with the
        task's name, at the next ``quiesce``.
        """
        try:
            self.failpoints.fire("pool.background")
            self.columnar.compact(force=True)
        except TransientError as exc:
            self.bg_compaction_failures += 1
            self.failpoints.record_recovery(
                getattr(exc, "failpoint", None) or "pool.background")

    def _compact_with_retry(self):
        """Inline compaction: absorb transient faults the same way."""
        try:
            self.columnar.compact()
        except TransientError as exc:
            self.bg_compaction_failures += 1
            self.failpoints.record_recovery(
                getattr(exc, "failpoint", None) or "compact.merge")

    def recover(self) -> dict:
        """Crash recovery: repair the WALs, rebuild the columnar replica.

        Models a restart after a crash (simulated by a failpoint firing
        mid-operation):

        1. every partition WAL verifies its checksums and truncates its
           torn tail (``WriteAheadLog.recover``);
        2. valid-looking records of a torn commit still sitting at the
           tails of *sibling* streams are dropped too (the crash hit
           between per-partition appends; no later commit can exist past
           the crash point), so no partial commit survives;
        3. the columnar replica is reset in place and re-replicated from
           LSN 0 — which requires ``retain_wal=True``, otherwise the
           applied prefix is gone and the rebuild is impossible.

        Returns ``{"records_dropped", "torn_commits", "replicated"}``.
        """
        if self.pool is not None:
            from repro.exec import BackgroundTaskError
            try:
                self.pool.drain_background()
            except BackgroundTaskError:
                # a poisoned background task may be the very crash being
                # recovered from; the rebuild below supersedes its work
                pass
        dropped = []
        for wal in self.storage.wals:
            dropped.extend(wal.recover())
        torn_commits = {record.commit_ts for record in dropped}
        if torn_commits:
            for wal in self.storage.wals:
                dropped.extend(wal.drop_tail_commits(torn_commits))
        replicated = 0
        if self.columnar is not None:
            if not self.retain_wal and \
                    any(wal.base_lsn > 0 for wal in self.storage.wals):
                raise ConfigError(
                    "replica rebuild needs the full WAL history: construct "
                    "the Database with retain_wal=True (applied prefixes "
                    "were already truncated)"
                )
            self.columnar.reset()
            replicated = self.replicate()
            if self.replica_breaker is not None:
                # the replica was just rebuilt: it is healthy by definition
                self.replica_breaker.record_success()
        return {"records_dropped": len(dropped),
                "torn_commits": sorted(torn_commits),
                "replicated": replicated}

    def replication_lag(self) -> int:
        if self.columnar is None:
            return 0
        return self.columnar.total_lag(self.storage.wals)

    def quiesce(self):
        """Block until scheduled background work (compaction) finishes.

        Tests and benchmarks call this to compare engine states at a
        deterministic point; a no-op for the sequential baseline.
        """
        if self.pool is not None:
            self.pool.drain_background()

    # -- statement preparation -----------------------------------------------------

    def prepare(self, sql: str):
        plan, _hit, _evicted, _contended = self._prepare(sql)
        return plan

    def _cache_key(self, sql: str) -> tuple:
        """Plan-cache key: the SQL text plus every engine-affecting flag.

        The planner compiles different physical plans depending on the
        encoding pushdown, order-awareness, shared-dictionary and
        segment-sketch toggles, so an A/B flip of
        ``planner.encoded_pushdown`` / ``planner.sorted_scan`` /
        ``planner.shared_dicts`` / ``planner.segment_sketches`` on a
        shared Database must never serve a plan built under the other
        setting.
        """
        return (sql, self.planner.encoded_pushdown, self.planner.sorted_scan,
                self.planner.shared_dicts, self.planner.segment_sketches)

    def _lock_plan_cache(self) -> bool:
        """Take the plan-cache mutex; True when another session held it."""
        if self._plan_cache_lock.acquire(blocking=False):
            return False
        self.plan_cache_contention += 1
        self._plan_cache_lock.acquire()
        return True

    def _prepare(self, sql: str) -> tuple[object, bool, int, int]:
        """Plan lookup through the LRU.

        Returns ``(plan, cache_hit, evictions, contention)`` — the entries
        this statement's insert displaced and the lock-held-by-another-
        session encounters, both attributed to the statement's ExecStats.
        """
        cache = self._plan_cache
        key = self._cache_key(sql)
        contended = 1 if self._lock_plan_cache() else 0
        try:
            plan = cache.get(key)
            if plan is not None:
                cache.move_to_end(key)
                self.plan_cache_hits += 1
                return plan, True, 0, contended
        finally:
            self._plan_cache_lock.release()
        # parse + plan outside the lock: planning is the expensive part and
        # needs no cache state
        statement = parse_sql(sql)
        plan = self.planner.plan(statement)
        evicted = 0
        if self._lock_plan_cache():
            contended += 1
        try:
            racer = cache.get(key)
            if racer is not None:
                # another session planned the same statement while we were
                # outside the lock: keep the installed plan
                cache.move_to_end(key)
                self.plan_cache_hits += 1
                return racer, True, 0, contended
            self.plan_cache_misses += 1
            cache[key] = plan
            while len(cache) > self.plan_cache_size:
                cache.popitem(last=False)
                evicted += 1
                self.plan_cache_evictions += 1
        finally:
            self._plan_cache_lock.release()
        return plan, False, evicted, contended

    # -- connections ------------------------------------------------------------------

    def connect(self, isolation: IsolationLevel | None = None) -> "Connection":
        return Connection(self, isolation or self.default_isolation)

    # -- convenience -----------------------------------------------------------------

    def query(self, sql: str, params: tuple = ()) -> Result:
        """One-shot autocommit query."""
        with self.connect() as conn:
            result = conn.execute(sql, params)
            conn.commit()
            return result


class Connection:
    """A session: explicit or autocommit transactions over the database."""

    def __init__(self, db: Database, isolation: IsolationLevel):
        self.db = db
        self.isolation = isolation
        self._txn: Transaction | None = None
        self._closed = False

    # -- context manager ------------------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, exc_type, _exc, _tb):
        if exc_type is not None:
            self.rollback()
        self.close()
        return False

    def close(self):
        if self._txn is not None:
            self.rollback()
        self._closed = True

    # -- transaction control ----------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def begin(self) -> Transaction:
        if self._closed:
            raise ConnectionStateError("connection is closed")
        if self._txn is not None:
            raise ConnectionStateError("transaction already open")
        self._txn = self.db.txn_manager.begin(self.isolation)
        return self._txn

    def commit(self):
        if self._txn is not None:
            txn = self._txn
            self._txn = None
            txn.commit()

    def rollback(self):
        if self._txn is not None:
            txn = self._txn
            self._txn = None
            txn.rollback()

    # -- statement execution ---------------------------------------------------------

    def execute(self, sql: str, params: tuple = (),
                route_columnar: bool = False) -> Result | DMLResult:
        """Execute one statement inside the current (or a fresh autocommit)
        transaction."""
        if self._closed:
            raise ConnectionStateError("connection is closed")
        plan, cache_hit, evicted, contended = self.db._prepare(sql)
        autocommit = self._txn is None
        if autocommit:
            self.begin()
        txn = self._txn
        txn.statement_begin()
        breaker = self.db.replica_breaker
        degraded = False
        if route_columnar and breaker is not None and not breaker.allow():
            # breaker open: skip the failing replica entirely and serve
            # from the row pipeline (identical answers, higher cost).
            # This *bypasses* the segment-sketch cache rather than
            # poisoning it: degraded statements never read or write
            # cached partials, and the warm entries stay valid for when
            # the replica heals (sketches track replica state, which a
            # scan fault does not change).
            route_columnar = False
            degraded = True
        try:
            try:
                result = self._run(plan, txn, tuple(params), route_columnar)
                if route_columnar and breaker is not None:
                    breaker.record_success()
            except ReplicaUnavailableError:
                # transient replica fault: the scan failed before doing
                # any work, so re-running on the row pipeline is safe —
                # the statement degrades instead of erroring
                if breaker is not None:
                    breaker.record_failure()
                self.db.failpoints.record_recovery("replica.scan")
                result = self._run(plan, txn, tuple(params), False)
                result.stats.faults_injected += 1
                result.stats.faults_recovered += 1
                degraded = True
        except Exception:
            if autocommit:
                self.rollback()
            raise
        if degraded:
            result.stats.degraded_statements += 1
            self.db.degraded_statements_total += 1
        if cache_hit:
            result.stats.plan_cache_hits += 1
        else:
            result.stats.plan_cache_misses += 1
        result.stats.plan_cache_evictions += evicted
        result.stats.plan_cache_contention += contended
        if autocommit:
            self.commit()
        return result

    def _run(self, plan, txn: Transaction, params: tuple,
             route_columnar: bool):
        executor = self.db.executor
        if isinstance(plan, SelectPlan):
            return executor.execute_select(plan, txn, params, route_columnar)
        from repro.sql.planner import DeletePlan, InsertPlan, UpdatePlan

        if isinstance(plan, InsertPlan):
            return executor.execute_insert(plan, txn, params)
        if isinstance(plan, UpdatePlan):
            return executor.execute_update(plan, txn, params)
        if isinstance(plan, DeletePlan):
            return executor.execute_delete(plan, txn, params)
        raise SQLError(f"cannot execute plan {plan!r}")
