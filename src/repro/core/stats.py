"""Latency/throughput statistics.

Implements the metric set the paper's statistics module reports: min, max,
mean, median, standard deviation and the 90th/95th/99th/99.9th/99.99th
percentile latencies, plus throughput over the measurement window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

PERCENTILES = (50.0, 90.0, 95.0, 99.0, 99.9, 99.99)


@dataclass
class LatencySummary:
    """Immutable summary of one latency population (milliseconds)."""

    count: int
    minimum: float
    maximum: float
    mean: float
    std: float
    percentiles: dict

    @property
    def median(self) -> float:
        return self.percentiles.get(50.0, float("nan"))

    @property
    def p90(self) -> float:
        return self.percentiles.get(90.0, float("nan"))

    @property
    def p95(self) -> float:
        return self.percentiles.get(95.0, float("nan"))

    @property
    def p99(self) -> float:
        return self.percentiles.get(99.0, float("nan"))

    @property
    def p999(self) -> float:
        return self.percentiles.get(99.9, float("nan"))

    @property
    def p9999(self) -> float:
        return self.percentiles.get(99.99, float("nan"))

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "std": self.std,
            **{f"p{p:g}": v for p, v in self.percentiles.items()},
        }


EMPTY_SUMMARY = LatencySummary(0, float("nan"), float("nan"), float("nan"),
                               float("nan"), {p: float("nan")
                                              for p in PERCENTILES})


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Linear-interpolation percentile over pre-sorted values."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (len(sorted_values) - 1) * fraction
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    weight = rank - low
    value = sorted_values[low] * (1 - weight) + sorted_values[high] * weight
    # clamp interpolation rounding error inside the observed range
    return min(max(value, sorted_values[0]), sorted_values[-1])


class LatencyCollector:
    """Accumulates latency samples for one request class."""

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: list[float] = []

    def add(self, latency_ms: float):
        self._samples.append(latency_ms)

    def extend(self, latencies):
        self._samples.extend(latencies)

    def __len__(self):
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def summary(self) -> LatencySummary:
        if not self._samples:
            return EMPTY_SUMMARY
        values = sorted(self._samples)
        count = len(values)
        mean = sum(values) / count
        variance = sum((v - mean) ** 2 for v in values) / count
        return LatencySummary(
            count=count,
            minimum=values[0],
            maximum=values[-1],
            mean=mean,
            std=math.sqrt(variance),
            percentiles={p: percentile(values, p / 100.0)
                         for p in PERCENTILES},
        )

    def reset(self):
        self._samples.clear()


@dataclass
class ClassMetrics:
    """Everything recorded for one request class during a run."""

    attempted: int = 0
    completed: int = 0
    aborted: int = 0
    latency: LatencyCollector = field(default_factory=LatencyCollector)
    queue_wait_ms: float = 0.0
    lock_wait_ms: float = 0.0
    service_ms: float = 0.0
    io_ms: float = 0.0
    # time spent deferred by the front-end admission controller (zero when
    # requests run without one, e.g. the sequential runner)
    admission_wait_ms: float = 0.0

    def throughput(self, window_ms: float) -> float:
        """Completions per second over the measurement window."""
        if window_ms <= 0:
            return 0.0
        return self.completed / (window_ms / 1000.0)


def describe(values) -> dict:
    """Convenience: summary dict of an arbitrary numeric sequence."""
    collector = LatencyCollector()
    collector.extend(values)
    return collector.summary().as_dict()
