"""Benchmark session: the handle workload programs execute through.

A ``Session`` wraps one engine connection and accumulates per-transaction
``ExecStats``.  Hybrid transaction programs mark their embedded real-time
query with ``with session.realtime_query(): ...`` — the statistics gathered
inside are kept separate so the cost model can apply the right store
context (real-time queries always run on the row engine, inside the
transaction, holding its locks: the paper's core abstraction).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.db.database import Connection
from repro.errors import TransactionAborted, TransientError
from repro.sim.work import WorkResult
from repro.sql.result import DMLResult, ExecStats, Result


class Session:
    """Execution context handed to transaction/query programs."""

    def __init__(self, connection: Connection, route_columnar: bool = False):
        self._conn = connection
        self._route_columnar = route_columnar
        self._stats = ExecStats()
        self._realtime_stats: ExecStats | None = None
        self._in_realtime = False
        self._n_statements = 0
        self._n_realtime_statements = 0

    # -- statement API (what workload programs call) -------------------------

    def execute(self, sql: str, params: tuple = ()) -> Result | DMLResult:
        result = self._conn.execute(
            sql, params,
            route_columnar=self._route_columnar and not self._in_realtime,
        )
        if self._in_realtime:
            self._realtime_stats.merge(result.stats)
            self._n_realtime_statements += 1
        else:
            self._stats.merge(result.stats)
            self._n_statements += 1
        return result

    def query_scalar(self, sql: str, params: tuple = ()):
        return self.execute(sql, params).scalar()

    @contextmanager
    def realtime_query(self):
        """Mark the real-time query section of a hybrid transaction."""
        if self._in_realtime:
            raise RuntimeError("realtime_query sections cannot nest")
        self._in_realtime = True
        if self._realtime_stats is None:
            self._realtime_stats = ExecStats()
        try:
            yield self
        finally:
            self._in_realtime = False

    # -- introspection ---------------------------------------------------------

    @property
    def had_realtime_query(self) -> bool:
        return self._realtime_stats is not None


def run_transaction(connection: Connection, kind: str, name: str, program,
                    rng, route_columnar: bool = False,
                    max_retries: int = 3) -> WorkResult:
    """Execute one transaction program logically; returns its WorkResult.

    ``program`` is a callable ``(session, rng) -> None`` issuing statements
    through the session.  Aborted transactions (write-write conflicts) and
    transient faults (injected failures, 2PC prepare aborts) are retried
    up to ``max_retries`` times, matching a sane client driver; the retry
    re-runs the whole program, so partial statement work is discarded
    with the rollback.
    """
    retries = 0
    while True:
        session = Session(connection, route_columnar)
        txn = connection.begin()
        try:
            program(session, rng)
            write_keys = frozenset(txn.written_keys())
            connection.commit()
            return WorkResult(
                kind=kind,
                name=name,
                stats=session._stats,
                realtime_stats=session._realtime_stats,
                n_statements=session._n_statements,
                n_realtime_statements=session._n_realtime_statements,
                write_keys=write_keys,
                retries=retries,
                commit_partitions=txn.commit_partitions,
            )
        except (TransactionAborted, TransientError):
            connection.rollback()
            retries += 1
            if retries > max_retries:
                return WorkResult(kind=kind, name=name, aborted=True,
                                  retries=retries)
        except Exception:
            connection.rollback()
            raise
