"""The OLxPBench runner: agents, load generation, measurement.

Reproduces the paper's client architecture (Fig. 2) on top of the simulated
cluster: the configuration names a workload and rates, the generator
populates request queues, agents pull requests, the engine's timing model
assigns latency, and the statistics module aggregates everything.

Request generation follows §IV-C:

* **open loop** — requests are emitted at the precise configured rate,
  without waiting for responses (the paper's default; it is what lets the
  interference experiments control request rates exactly);
* **closed loop** — a fixed thread pool where each thread issues its next
  request only after the previous one completes (plus think time).

Agent combination modes:

* ``sequential`` — one closed-loop thread alternates online transactions
  and analytical queries in rate proportion;
* ``concurrent`` — independent OLTP and OLAP agents run simultaneously;
* ``hybrid`` — hybrid agents send hybrid transactions (real-time query
  in-between an online transaction).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from random import Random

from repro.core.config import BenchConfig
from repro.core.session import run_transaction
from repro.core.stats import ClassMetrics, LatencyCollector
from repro.engines.base import HTAPCluster
from repro.errors import ConfigError
from repro.workloads.base import Workload, weighted_choice


@dataclass
class RunReport:
    """Everything measured during one benchmark run."""

    config: BenchConfig
    engine: str
    window_ms: float
    classes: dict = field(default_factory=dict)       # kind -> ClassMetrics
    per_transaction: dict = field(default_factory=dict)  # name -> collector
    lock_wait_ms: float = 0.0
    lock_waits: int = 0
    lock_acquisitions: int = 0
    busy_ms: dict = field(default_factory=dict)        # group -> busy ms
    utilisation: dict = field(default_factory=dict)
    columnar_routed: int = 0
    columnar_refused: int = 0
    # vectorized-executor counters (aggregated over every request)
    vectorized_statements: int = 0
    batches_scanned: int = 0
    segments_pruned: int = 0
    # encoding-aware execution counters (aggregated over every request)
    segments_encoded: int = 0
    runs_skipped: int = 0
    columns_decoded: int = 0
    values_decoded: int = 0
    # delta–main compaction observability: ordered-merge output segments
    # over the run, delta-overlay rows merge-on-read scans considered,
    # ORDER BYs satisfied by scan order, and code-space grouped batches
    segments_merged: int = 0
    delta_rows_pending: int = 0
    sort_elided: int = 0
    groups_coded: int = 0
    # shared-dictionary counters: join rows probed as global codes,
    # batches grouped against the table-level accumulator, and lazy
    # per-segment->global remap arrays built
    join_code_probes: int = 0
    groups_global_coded: int = 0
    dict_remaps: int = 0
    # plan-cache outcome over the run, plus the replica's encoding layer
    # accounting at run end (segments/bytes/compression, None when the
    # engine has no columnar replica)
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_evictions: int = 0
    plan_cache_contention: int = 0
    encoding: dict | None = None
    # partition counters (aggregated over every request)
    partitions_scanned: int = 0
    partitions_pruned: int = 0
    partial_aggregates: int = 0
    # worker-pool counters: pool width requests ran under (max over the
    # run; 0 = sequential), ordered-gather blocking time, and background
    # compactions scheduled off the query path
    pool_workers: int = 0
    gather_wait_ms: float = 0.0
    bg_compactions: int = 0
    # fault counters (aggregated over every request): injected faults,
    # faults survived via retry/fallback/degraded routing, and statements
    # the circuit breaker degraded to the row pipeline
    faults_injected: int = 0
    faults_recovered: int = 0
    degraded_statements: int = 0
    # segment-sketch counters (aggregated over every request): cached
    # whole-segment aggregate partials built / served, input rows elided
    # by cache hits, and cache entries dropped by kills or compactions
    sketches_built: int = 0
    sketches_hit: int = 0
    sketch_rows_elided: int = 0
    sketch_invalidations: int = 0
    # commit-path split over the run (fast path vs two-phase)
    single_partition_commits: int = 0
    multi_partition_commits: int = 0

    @property
    def multi_partition_commit_fraction(self) -> float:
        total = self.single_partition_commits + self.multi_partition_commits
        if total == 0:
            return 0.0
        return self.multi_partition_commits / total

    def metrics(self, kind: str) -> ClassMetrics:
        return self.classes.setdefault(kind, ClassMetrics())

    def throughput(self, kind: str) -> float:
        if kind not in self.classes:
            return 0.0
        return self.classes[kind].throughput(self.window_ms)

    def latency(self, kind: str):
        if kind not in self.classes:
            return LatencyCollector().summary()
        return self.classes[kind].latency.summary()

    def transaction_latency(self, name: str):
        collector = self.per_transaction.get(name)
        return collector.summary() if collector else LatencyCollector().summary()

    def summary_text(self) -> str:
        lines = [
            f"engine={self.engine} workload={self.config.workload} "
            f"mode={self.config.mode} loop={self.config.loop} "
            f"window={self.window_ms:.0f}ms",
        ]
        for kind, metrics in sorted(self.classes.items()):
            summary = metrics.latency.summary()
            lines.append(
                f"  {kind:>7}: attempted={metrics.attempted:<6} "
                f"completed={metrics.completed:<6} "
                f"tput={metrics.throughput(self.window_ms):9.2f}/s "
                f"avg={summary.mean:9.2f}ms p95={summary.p95:9.2f}ms "
                f"p99.9={summary.p999:9.2f}ms"
            )
        if self.lock_acquisitions:
            lines.append(
                f"  locks: acquisitions={self.lock_acquisitions} "
                f"waits={self.lock_waits} wait_ms={self.lock_wait_ms:.1f}"
            )
        if self.vectorized_statements:
            lines.append(
                f"  vectorized: statements={self.vectorized_statements} "
                f"batches={self.batches_scanned} "
                f"segments_pruned={self.segments_pruned} "
                f"segments_encoded={self.segments_encoded} "
                f"runs_skipped={self.runs_skipped}"
            )
        if self.encoding and self.encoding.get("segments_encoded"):
            lines.append(
                f"  encoding: segments={self.encoding['segments_encoded']}"
                f"/{self.encoding['segments_total']} "
                f"bytes_saved={self.encoding['bytes_saved']} "
                f"compression={self.encoding['compression_ratio']:.2f}x"
            )
        if self.segments_merged or self.sort_elided \
                or self.delta_rows_pending or self.groups_coded:
            lines.append(
                f"  delta-main: segments_merged={self.segments_merged} "
                f"delta_rows_pending={self.delta_rows_pending} "
                f"sort_elided={self.sort_elided} "
                f"groups_coded={self.groups_coded}"
            )
        if self.join_code_probes or self.groups_global_coded \
                or self.dict_remaps:
            lines.append(
                f"  shared dicts: join_code_probes={self.join_code_probes} "
                f"groups_global_coded={self.groups_global_coded} "
                f"dict_remaps={self.dict_remaps}"
            )
        if self.plan_cache_hits or self.plan_cache_misses:
            lines.append(
                f"  plan cache: hits={self.plan_cache_hits} "
                f"misses={self.plan_cache_misses} "
                f"evictions={self.plan_cache_evictions} "
                f"contention={self.plan_cache_contention}"
            )
        if self.pool_workers or self.bg_compactions:
            lines.append(
                f"  pool: workers={self.pool_workers} "
                f"gather_wait_ms={self.gather_wait_ms:.1f} "
                f"bg_compactions={self.bg_compactions}"
            )
        if self.faults_injected or self.faults_recovered \
                or self.degraded_statements:
            lines.append(
                f"  faults: injected={self.faults_injected} "
                f"recovered={self.faults_recovered} "
                f"degraded_statements={self.degraded_statements}"
            )
        if self.sketches_built or self.sketches_hit \
                or self.sketch_invalidations:
            lines.append(
                f"  sketches: built={self.sketches_built} "
                f"hit={self.sketches_hit} "
                f"rows_elided={self.sketch_rows_elided} "
                f"invalidations={self.sketch_invalidations}"
            )
        commits = self.single_partition_commits + self.multi_partition_commits
        if commits:
            lines.append(
                f"  partitions: scanned={self.partitions_scanned} "
                f"pruned={self.partitions_pruned} "
                f"multi_partition_commits={self.multi_partition_commits}"
                f"/{commits} "
                f"({self.multi_partition_commit_fraction:.1%})"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class _Arrival:
    time_ms: float
    kind: str


def open_loop_arrivals(rate_per_s: float, kind: str, total_ms: float,
                       phase_ms: float = 0.0) -> list[_Arrival]:
    """Evenly spaced arrivals at the exact configured rate (open loop)."""
    if rate_per_s <= 0:
        return []
    interval = 1000.0 / rate_per_s
    arrivals = []
    t = phase_ms
    while t < total_ms:
        arrivals.append(_Arrival(t, kind))
        t += interval
    return arrivals


class OLxPBench:
    """Benchmark driver: owns one engine + one installed workload."""

    def __init__(self, engine: HTAPCluster, workload: Workload,
                 scale: float = 1.0, with_foreign_keys: bool = False,
                 seed: int = 42):
        if with_foreign_keys and not engine.supports_foreign_keys:
            raise ConfigError(
                f"engine {engine.name!r} does not support foreign keys; "
                "use the FK-free schema variant"
            )
        self.engine = engine
        self.workload = workload
        self.seed = seed
        # per-(kind, seed) parameter streams; reset by every run() so two
        # runs with the same config issue identical request sequences
        self._rngs: dict[tuple, Random] = {}
        workload.install(engine.db, Random(seed), scale,
                         with_foreign_keys=with_foreign_keys)
        self._conn = engine.db.connect()
        self._profiles = {
            "oltp": workload.oltp_transactions(),
            "olap": workload.analytical_queries(),
            "hybrid": workload.hybrid_transactions(),
        }

    # -- public API ---------------------------------------------------------------

    def run(self, config: BenchConfig) -> RunReport:
        """Execute one measurement run; timing state resets, data persists."""
        if config.workload != self.workload.name:
            raise ConfigError(
                f"config is for workload {config.workload!r} but this bench "
                f"was prepared with {self.workload.name!r}"
            )
        self.engine.reset_sim()
        # fresh per-class parameter streams: two runs with the same config
        # and seed must issue identical request sequences
        self._rngs = {}
        # commit-path counters are cumulative on the manager; remember the
        # baseline so the report covers this run only
        manager = self.engine.db.txn_manager
        self._commit_baseline = (manager.single_partition_commits,
                                 manager.multi_partition_commits)
        if config.loop == "open" and config.mode != "sequential":
            return self._run_open_loop(config)
        return self._run_closed_loop(config)

    # -- open loop -------------------------------------------------------------------

    def _class_rates(self, config: BenchConfig) -> dict:
        if config.mode == "hybrid":
            rates = {"hybrid": config.hybrid_rate or config.oltp_rate}
            if config.oltp_rate and config.hybrid_rate:
                rates["oltp"] = config.oltp_rate
            if config.olap_rate:
                rates["olap"] = config.olap_rate
            return rates
        rates = {}
        if config.oltp_rate:
            rates["oltp"] = config.oltp_rate
        if config.olap_rate:
            rates["olap"] = config.olap_rate
        if config.hybrid_rate:
            rates["hybrid"] = config.hybrid_rate
        return rates

    def _run_open_loop(self, config: BenchConfig) -> RunReport:
        rates = self._class_rates(config)
        if not rates:
            raise ConfigError("all request rates are zero")
        arrivals: list[_Arrival] = []
        for i, (kind, rate) in enumerate(sorted(rates.items())):
            phase = (1000.0 / rate) * (i / max(1, len(rates))) if rate else 0
            arrivals.extend(
                open_loop_arrivals(rate, kind, config.total_ms, phase)
            )
        arrivals.sort(key=lambda a: a.time_ms)
        return self._execute(arrivals, config)

    # -- closed loop ------------------------------------------------------------------

    def _run_closed_loop(self, config: BenchConfig) -> RunReport:
        rates = self._class_rates(config)
        if not rates:
            raise ConfigError("all request rates are zero")
        threads = 1 if config.mode == "sequential" else config.closed_threads
        rng = Random(config.seed ^ 0x5EED)
        report = self._new_report(config)
        # each thread: issue, wait for completion, think, repeat
        heap = [(0.0, i) for i in range(threads)]
        heapq.heapify(heap)
        kinds = sorted(rates)
        weights = [rates[k] for k in kinds]
        seq_cycle = itertools.cycle(self._sequential_pattern(rates))
        while heap:
            now, thread = heapq.heappop(heap)
            if now >= config.total_ms:
                continue
            if config.mode == "sequential":
                kind = next(seq_cycle)
            else:
                kind = rng.choices(kinds, weights)[0]
            latency = self._dispatch(now, kind, config, report)
            next_time = now + latency + config.think_time_ms
            heapq.heappush(heap, (next_time, thread))
        self._finalise(report, config)
        return report

    @staticmethod
    def _sequential_pattern(rates: dict) -> list[str]:
        """Deterministic alternation proportional to rates (mode 1, §IV-C)."""
        if not rates:
            return ["oltp"]
        smallest = min(r for r in rates.values() if r > 0)
        pattern = []
        for kind in sorted(rates):
            pattern.extend([kind] * max(1, round(rates[kind] / smallest)))
        return pattern

    # -- shared execution core ------------------------------------------------------------

    def _new_report(self, config: BenchConfig) -> RunReport:
        return RunReport(
            config=config,
            engine=self.engine.name,
            window_ms=config.duration_ms,
        )

    def _execute(self, arrivals: list[_Arrival],
                 config: BenchConfig) -> RunReport:
        report = self._new_report(config)
        for arrival in arrivals:
            self._dispatch(arrival.time_ms, arrival.kind, config, report)
        self._finalise(report, config)
        return report

    def _dispatch(self, now: float, kind: str, config: BenchConfig,
                  report: RunReport) -> float:
        """Execute one request; record metrics; return its latency (ms)."""
        profiles = self._profiles[kind]
        overrides = {
            "oltp": config.oltp_weights,
            "olap": config.olap_weights,
            "hybrid": config.hybrid_weights,
        }[kind]
        rng = self._rng_for(kind, config)
        profile = weighted_choice(profiles, rng, overrides)

        # snapshot before routing: route_analytical ticks the engine too,
        # so merges it triggers belong to this request's attribution
        replica = self.engine.db.columnar
        merges_before = (replica.segments_merged_total()
                         if replica is not None else 0)
        sketch_inv_before = (replica.sketches.invalidated
                             if replica is not None else 0)
        bg_before = self.engine.db.bg_compactions_total
        columnar = False
        if kind == "olap":
            columnar = self.engine.route_analytical(now)
            if columnar:
                report.columnar_routed += 1
            else:
                report.columnar_refused += 1

        work = run_transaction(
            self._conn, kind, profile.name, profile.program, rng,
            route_columnar=columnar,
        )
        breakdown = self.engine.account(now, work, columnar)
        latency = breakdown.total
        exec_stats = work.combined_stats()
        if replica is not None:
            # ordered-compaction merges triggered while serving this
            # request (the engine tick replicates + compacts): attribute
            # them to the statement window that caused them
            exec_stats.segments_merged += \
                replica.segments_merged_total() - merges_before
            # sketch invalidations are replica-side events (kills during
            # replication, compaction re-seals): attribute them to the
            # request whose engine tick caused them, like the merges
            exec_stats.sketch_invalidations += \
                replica.sketches.invalidated - sketch_inv_before
        # background compactions the engine scheduled while serving this
        # request, attributed the same way as the merges above
        exec_stats.bg_compactions += \
            self.engine.db.bg_compactions_total - bg_before
        report.batches_scanned += exec_stats.batches_scanned
        report.segments_pruned += exec_stats.segments_pruned
        report.vectorized_statements += exec_stats.vectorized_statements
        report.segments_encoded += exec_stats.segments_encoded
        report.runs_skipped += exec_stats.runs_skipped
        report.columns_decoded += exec_stats.columns_decoded
        report.values_decoded += exec_stats.values_decoded
        report.delta_rows_pending += exec_stats.delta_rows_pending
        report.sort_elided += exec_stats.sort_elided
        report.groups_coded += exec_stats.groups_coded
        report.join_code_probes += exec_stats.join_code_probes
        report.groups_global_coded += exec_stats.groups_global_coded
        report.dict_remaps += exec_stats.dict_remaps
        report.segments_merged += exec_stats.segments_merged
        report.plan_cache_hits += exec_stats.plan_cache_hits
        report.plan_cache_misses += exec_stats.plan_cache_misses
        report.plan_cache_evictions += exec_stats.plan_cache_evictions
        report.plan_cache_contention += exec_stats.plan_cache_contention
        report.partitions_scanned += exec_stats.partitions_scanned
        report.partitions_pruned += exec_stats.partitions_pruned
        report.partial_aggregates += exec_stats.partial_aggregates
        report.pool_workers = max(report.pool_workers,
                                  exec_stats.pool_workers)
        report.gather_wait_ms += exec_stats.gather_wait_ms
        report.bg_compactions += exec_stats.bg_compactions
        report.faults_injected += exec_stats.faults_injected
        report.faults_recovered += exec_stats.faults_recovered
        report.degraded_statements += exec_stats.degraded_statements
        report.sketches_built += exec_stats.sketches_built
        report.sketches_hit += exec_stats.sketches_hit
        report.sketch_rows_elided += exec_stats.sketch_rows_elided
        report.sketch_invalidations += exec_stats.sketch_invalidations

        measured = now >= config.warmup_ms
        if measured:
            metrics = report.metrics(kind)
            metrics.attempted += 1
            if work.aborted:
                metrics.aborted += 1
            elif now + latency <= config.total_ms:
                metrics.completed += 1
            metrics.latency.add(latency)
            metrics.queue_wait_ms += breakdown.queue_wait
            metrics.lock_wait_ms += breakdown.lock_wait
            metrics.service_ms += breakdown.service
            metrics.io_ms += breakdown.io
            collector = report.per_transaction.get(profile.name)
            if collector is None:
                collector = LatencyCollector(profile.name)
                report.per_transaction[profile.name] = collector
            collector.add(latency)
        return latency

    def _rng_for(self, kind: str, config: BenchConfig) -> Random:
        key = (kind, config.seed)
        rng = self._rngs.get(key)
        if rng is None:
            rng = Random(f"{kind}:{config.seed}")
            self._rngs[key] = rng
        return rng

    def _finalise(self, report: RunReport, config: BenchConfig):
        manager = self.engine.db.txn_manager
        base_single, base_multi = getattr(self, "_commit_baseline", (0, 0))
        report.single_partition_commits = \
            manager.single_partition_commits - base_single
        report.multi_partition_commits = \
            manager.multi_partition_commits - base_multi
        locks = self.engine.locks
        report.lock_wait_ms = locks.total_wait_ms
        report.lock_waits = locks.waits
        report.lock_acquisitions = locks.acquisitions
        if self.engine.db.columnar is not None:
            report.encoding = self.engine.db.columnar.encoding_stats()
        report.busy_ms = {
            name: group.busy_ms for name, group in self.engine.groups.items()
        }
        report.utilisation = self.engine.utilisation(config.total_ms)
