"""Report rendering: the statistics module's output formats.

The paper's client stores min/max/medium/90th/95th/99.9th/99.99th
percentile latencies to a user-specified file; this module renders a
``RunReport`` as aligned text, Markdown, or CSV rows, and can render an
``InterferenceMatrix`` as the rate-grid tables behind Figs. 7-9.
"""

from __future__ import annotations

import csv
import io

from repro.core.runner import RunReport
from repro.core.stats import LatencySummary

_LATENCY_COLUMNS = ("count", "min", "mean", "median", "p90", "p95", "p99",
                    "p99.9", "p99.99", "max", "std")


def _latency_row(summary: LatencySummary) -> list:
    return [
        summary.count, summary.minimum, summary.mean, summary.median,
        summary.p90, summary.p95, summary.p99, summary.p999, summary.p9999,
        summary.maximum, summary.std,
    ]


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_text(report: RunReport, per_transaction: bool = False) -> str:
    """Aligned plain-text report."""
    lines = [report.summary_text()]
    if per_transaction and report.per_transaction:
        lines.append("  per-transaction latency (ms):")
        width = max(len(name) for name in report.per_transaction)
        for name in sorted(report.per_transaction):
            summary = report.transaction_latency(name)
            lines.append(
                f"    {name:<{width}}  n={summary.count:<6} "
                f"avg={summary.mean:9.2f}  p95={summary.p95:9.2f}  "
                f"p99.9={summary.p999:9.2f}"
            )
    if report.utilisation:
        cells = "  ".join(f"{group}={value:.1%}"
                          for group, value in
                          sorted(report.utilisation.items()))
        lines.append(f"  utilisation: {cells}")
    if report.vectorized_statements or report.segments_pruned:
        lines.append(
            f"  vectorized: statements={report.vectorized_statements} "
            f"batches={report.batches_scanned} "
            f"segments_pruned={report.segments_pruned} "
            f"segments_encoded={report.segments_encoded} "
            f"runs_skipped={report.runs_skipped}"
        )
    if report.encoding and report.encoding.get("segments_encoded"):
        encoding = report.encoding
        lines.append(
            f"  encoding: segments={encoding['segments_encoded']}"
            f"/{encoding['segments_total']} "
            f"bytes_saved={encoding['bytes_saved']} "
            f"compression={encoding['compression_ratio']:.2f}x"
        )
    if report.segments_merged or report.sort_elided \
            or report.delta_rows_pending or report.groups_coded:
        lines.append(
            f"  delta-main: segments_merged={report.segments_merged} "
            f"delta_rows_pending={report.delta_rows_pending} "
            f"sort_elided={report.sort_elided} "
            f"groups_coded={report.groups_coded}"
        )
    if report.join_code_probes or report.groups_global_coded \
            or report.dict_remaps:
        lines.append(
            f"  shared dicts: join_code_probes={report.join_code_probes} "
            f"groups_global_coded={report.groups_global_coded} "
            f"dict_remaps={report.dict_remaps}"
        )
    if report.plan_cache_hits or report.plan_cache_misses:
        lines.append(
            f"  plan cache: hits={report.plan_cache_hits} "
            f"misses={report.plan_cache_misses} "
            f"evictions={report.plan_cache_evictions} "
            f"contention={report.plan_cache_contention}"
        )
    if report.pool_workers or report.bg_compactions:
        lines.append(
            f"  pool: workers={report.pool_workers} "
            f"gather_wait_ms={report.gather_wait_ms:.1f} "
            f"bg_compactions={report.bg_compactions}"
        )
    if report.faults_injected or report.faults_recovered \
            or report.degraded_statements:
        lines.append(
            f"  faults: injected={report.faults_injected} "
            f"recovered={report.faults_recovered} "
            f"degraded_statements={report.degraded_statements}"
        )
    if report.sketches_built or report.sketches_hit \
            or report.sketch_invalidations:
        lines.append(
            f"  sketches: built={report.sketches_built} "
            f"hit={report.sketches_hit} "
            f"rows_elided={report.sketch_rows_elided} "
            f"invalidations={report.sketch_invalidations}"
        )
    return "\n".join(lines)


def render_markdown(report: RunReport) -> str:
    """Markdown table: one row per request class."""
    header = ["class", "throughput/s", *_LATENCY_COLUMNS]
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for kind in sorted(report.classes):
        summary = report.latency(kind)
        row = [kind, f"{report.throughput(kind):.2f}",
               *(_format_cell(v) for v in _latency_row(summary))]
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def render_csv(reports: list[RunReport]) -> str:
    """One CSV row per (run, class): the raw series behind the figures."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "workload", "engine", "mode", "loop", "oltp_rate", "olap_rate",
        "hybrid_rate", "class", "throughput", *_LATENCY_COLUMNS,
        "vectorized_requests", "batches_scanned", "segments_pruned",
        "segments_encoded", "runs_skipped",
        "segments_merged", "delta_rows_pending", "sort_elided",
        "groups_coded",
        "join_code_probes", "groups_global_coded", "dict_remaps",
        "plan_cache_hits", "plan_cache_misses",
        "plan_cache_evictions", "plan_cache_contention",
        "partitions_scanned", "partitions_pruned",
        "multi_partition_commits",
        "pool_workers", "gather_wait_ms", "bg_compactions",
        "faults_injected", "faults_recovered", "degraded_statements",
        "sketches_built", "sketches_hit", "sketch_rows_elided",
        "sketch_invalidations",
    ])
    for report in reports:
        config = report.config
        for kind in sorted(report.classes):
            summary = report.latency(kind)
            writer.writerow([
                config.workload, report.engine, config.mode, config.loop,
                config.oltp_rate, config.olap_rate, config.hybrid_rate,
                kind, report.throughput(kind),
                *_latency_row(summary),
                report.vectorized_statements, report.batches_scanned,
                report.segments_pruned,
                report.segments_encoded, report.runs_skipped,
                report.segments_merged, report.delta_rows_pending,
                report.sort_elided, report.groups_coded,
                report.join_code_probes, report.groups_global_coded,
                report.dict_remaps,
                report.plan_cache_hits, report.plan_cache_misses,
                report.plan_cache_evictions, report.plan_cache_contention,
                report.partitions_scanned, report.partitions_pruned,
                report.multi_partition_commits,
                report.pool_workers, report.gather_wait_ms,
                report.bg_compactions,
                report.faults_injected, report.faults_recovered,
                report.degraded_statements,
                report.sketches_built, report.sketches_hit,
                report.sketch_rows_elided, report.sketch_invalidations,
            ])
    return buffer.getvalue()


def write_report(report: RunReport, path: str,
                 per_transaction: bool = True):
    """Store the statistics to a file, as the paper's client does."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_text(report, per_transaction=per_transaction))
        handle.write("\n")
