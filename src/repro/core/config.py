"""Benchmark configuration.

Mirrors the paper's XML-driven client configuration (Fig. 2): workload to
use, transaction/query weights, request rates, SUT options, agent mode and
loop mode are all declarative.  Configurations can be built directly, from
dictionaries, or parsed from an XML file with the same vocabulary the paper
describes.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

AGENT_MODES = ("sequential", "concurrent", "hybrid")
LOOP_MODES = ("open", "closed")


@dataclass(frozen=True)
class BenchConfig:
    """One benchmark run's parameters.

    Rates are requests per second of *simulated* time.  The three agent
    combination modes follow §IV-C of the paper:

    * ``sequential`` — online transactions and analytical queries take turns
      (OLTP stream first, then OLAP);
    * ``concurrent`` — OLTP agents and OLAP agents run simultaneously;
    * ``hybrid`` — hybrid agents send hybrid transactions that perform a
      real-time query in-between an online transaction.
    """

    workload: str = "subenchmark"
    mode: str = "concurrent"
    loop: str = "open"
    # request rates (per second); a zero rate disables that agent class
    oltp_rate: float = 100.0
    olap_rate: float = 0.0
    hybrid_rate: float = 0.0
    # run shape (simulated milliseconds)
    duration_ms: float = 1000.0
    warmup_ms: float = 200.0
    # closed-loop shape
    closed_threads: int = 8
    think_time_ms: float = 0.0
    # data + determinism
    scale: float = 1.0
    seed: int = 42
    with_foreign_keys: bool = False
    # optional per-transaction weight overrides: {"NewOrder": 0.5, ...}
    oltp_weights: dict = field(default_factory=dict)
    olap_weights: dict = field(default_factory=dict)
    hybrid_weights: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.mode not in AGENT_MODES:
            raise ConfigError(
                f"mode must be one of {AGENT_MODES}, got {self.mode!r}"
            )
        if self.loop not in LOOP_MODES:
            raise ConfigError(
                f"loop must be one of {LOOP_MODES}, got {self.loop!r}"
            )
        for rate_name in ("oltp_rate", "olap_rate", "hybrid_rate"):
            if getattr(self, rate_name) < 0:
                raise ConfigError(f"{rate_name} must be >= 0")
        if self.duration_ms <= 0:
            raise ConfigError("duration_ms must be positive")
        if self.warmup_ms < 0:
            raise ConfigError("warmup_ms must be >= 0")
        if self.closed_threads <= 0:
            raise ConfigError("closed_threads must be positive")
        if self.scale <= 0:
            raise ConfigError("scale must be positive")

    @property
    def total_ms(self) -> float:
        return self.warmup_ms + self.duration_ms

    def with_rates(self, oltp: float | None = None, olap: float | None = None,
                   hybrid: float | None = None) -> "BenchConfig":
        """Copy with updated rates (the sweep helper benches lean on)."""
        return replace(
            self,
            oltp_rate=self.oltp_rate if oltp is None else oltp,
            olap_rate=self.olap_rate if olap is None else olap,
            hybrid_rate=self.hybrid_rate if hybrid is None else hybrid,
        )

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "BenchConfig":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown config keys: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_xml(cls, source: str) -> "BenchConfig":
        """Parse an XML configuration.

        Accepts either a path or an XML string.  Vocabulary::

            <olxpbench>
              <workload>subenchmark</workload>
              <mode>hybrid</mode>
              <loop>open</loop>
              <rates oltp="80" olap="1" hybrid="0"/>
              <run duration_ms="1000" warmup_ms="200"/>
              <closed threads="8" think_time_ms="0"/>
              <data scale="1.0" seed="42" with_foreign_keys="false"/>
              <weights kind="oltp"><weight name="NewOrder">0.45</weight></weights>
            </olxpbench>
        """
        text = source
        if "<" not in source:
            with open(source, encoding="utf-8") as handle:
                text = handle.read()
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ConfigError(f"bad XML configuration: {exc}") from exc

        data: dict = {}

        def set_text(key, cast=str):
            node = root.find(key)
            if node is not None and node.text:
                data[key] = cast(node.text.strip())

        set_text("workload")
        set_text("mode")
        set_text("loop")

        rates = root.find("rates")
        if rates is not None:
            for attr, key in (("oltp", "oltp_rate"), ("olap", "olap_rate"),
                              ("hybrid", "hybrid_rate")):
                if attr in rates.attrib:
                    data[key] = float(rates.attrib[attr])
        run = root.find("run")
        if run is not None:
            if "duration_ms" in run.attrib:
                data["duration_ms"] = float(run.attrib["duration_ms"])
            if "warmup_ms" in run.attrib:
                data["warmup_ms"] = float(run.attrib["warmup_ms"])
        closed = root.find("closed")
        if closed is not None:
            if "threads" in closed.attrib:
                data["closed_threads"] = int(closed.attrib["threads"])
            if "think_time_ms" in closed.attrib:
                data["think_time_ms"] = float(closed.attrib["think_time_ms"])
        datanode = root.find("data")
        if datanode is not None:
            if "scale" in datanode.attrib:
                data["scale"] = float(datanode.attrib["scale"])
            if "seed" in datanode.attrib:
                data["seed"] = int(datanode.attrib["seed"])
            if "with_foreign_keys" in datanode.attrib:
                data["with_foreign_keys"] = (
                    datanode.attrib["with_foreign_keys"].lower()
                    in ("1", "true", "yes")
                )
        for weights in root.findall("weights"):
            kind = weights.attrib.get("kind", "oltp")
            key = {"oltp": "oltp_weights", "olap": "olap_weights",
                   "hybrid": "hybrid_weights"}.get(kind)
            if key is None:
                raise ConfigError(f"unknown weights kind {kind!r}")
            table = {}
            for weight in weights.findall("weight"):
                table[weight.attrib["name"]] = float(weight.text.strip())
            data[key] = table
        return cls.from_dict(data)
