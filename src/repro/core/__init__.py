"""OLxPBench framework core: config, session, runner, statistics."""

from repro.core.config import BenchConfig
from repro.core.runner import OLxPBench, RunReport
from repro.core.session import Session, run_transaction
from repro.core.stats import (
    ClassMetrics,
    LatencyCollector,
    LatencySummary,
    describe,
    percentile,
)

__all__ = [
    "BenchConfig",
    "OLxPBench",
    "RunReport",
    "Session",
    "run_transaction",
    "ClassMetrics",
    "LatencyCollector",
    "LatencySummary",
    "describe",
    "percentile",
]
