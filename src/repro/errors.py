"""Exception hierarchy shared by every repro subsystem.

The hierarchy mirrors what a user of a real DBMS driver would expect:
``ReproError`` is the catch-all; SQL problems derive from ``SQLError``;
transactional problems derive from ``TransactionError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class CatalogError(ReproError):
    """Schema-level problem: unknown table/column, duplicate definition, ..."""


class UnsupportedFeatureError(ReproError):
    """A feature that the target engine deliberately does not support.

    MemSQL-like engines raise this for ``FOREIGN KEY`` constraints, matching
    the paper's note that OLxPBench ships two schema versions because some
    HTAP DBMSs lack foreign-key support.
    """


class SQLError(ReproError):
    """Base class for problems in the SQL front end."""


class SQLSyntaxError(SQLError):
    """The statement could not be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class BindError(SQLError):
    """Name resolution failed (unknown table/column, ambiguous reference)."""


class PlanError(SQLError):
    """The binder output could not be turned into an executable plan."""


class ExecutionError(SQLError):
    """Runtime failure while executing a plan (type error, bad parameter)."""


class IntegrityError(ReproError):
    """Primary-key, foreign-key, or NOT NULL violation."""


class TransactionError(ReproError):
    """Base class for transaction lifecycle problems."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and must be retried by the caller."""


class WriteConflictError(TransactionAborted):
    """First-committer-wins validation failed under snapshot isolation."""


class DeadlockError(TransactionAborted):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeoutError(TransactionAborted):
    """A lock could not be acquired within the configured timeout."""


class ConnectionStateError(TransactionError):
    """Operation illegal in the connection's current state."""


class TransientError(ReproError):
    """A fault the caller may retry: the operation failed, state is clean.

    Retry loops (``run_transaction``, the worker pool's task wrapper)
    treat this family as retryable alongside ``TransactionAborted``.
    Anything not in this family is assumed fatal and propagates.
    """


class InjectedFaultError(TransientError):
    """A failpoint fired.  Deterministic, seeded, and always retryable."""

    def __init__(self, failpoint: str, message: str | None = None):
        super().__init__(message or f"injected fault at failpoint "
                         f"{failpoint!r}")
        self.failpoint = failpoint


class ReplicaUnavailableError(TransientError):
    """The columnar replica cannot serve a scan right now.

    The session layer degrades the statement to the row pipeline (answers
    stay correct) and trips the circuit breaker; the replica is probed
    again after the cooldown.
    """


class WALCorruptionError(ReproError):
    """The write-ahead log is damaged beyond a torn tail.

    A torn tail (invalid records at the very end of the stream) is the
    expected crash signature and is silently truncated by ``recover()``;
    an invalid record *followed by a valid one* means mid-log corruption,
    which no recovery protocol can repair — it is fatal.
    """


class WALBoundsError(ReproError, ValueError):
    """An LSN argument is outside the log's valid range.

    Subclasses ``ValueError`` so callers that predate the typed taxonomy
    (``except ValueError``) keep working.
    """


class ConfigError(ReproError):
    """Benchmark configuration is malformed or inconsistent."""


class WorkloadError(ReproError):
    """A workload definition is internally inconsistent."""
