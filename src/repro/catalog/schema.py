"""Table and schema metadata.

A ``Table`` describes columns, the (possibly composite) primary key,
secondary indexes and foreign keys.  A ``Catalog`` is the registry the SQL
binder resolves names against.  The catalog is purely metadata — rows live
in ``repro.storage``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.types import SQLType
from repro.errors import CatalogError


@dataclass(frozen=True)
class Column:
    """A single column definition."""

    name: str
    col_type: SQLType
    nullable: bool = True

    def __str__(self):
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.col_type}{null}"


@dataclass(frozen=True)
class ForeignKey:
    """A referential constraint: ``columns`` reference ``ref_table.ref_columns``."""

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]

    def __post_init__(self):
        if len(self.columns) != len(self.ref_columns):
            raise CatalogError(
                f"foreign key column count mismatch: {self.columns} vs {self.ref_columns}"
            )


@dataclass(frozen=True)
class IndexDef:
    """A secondary index definition. ``unique`` indexes reject duplicates."""

    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False


class Table:
    """Metadata for one table: columns, primary key, indexes, foreign keys."""

    def __init__(
        self,
        name: str,
        columns: list[Column],
        primary_key: tuple[str, ...],
        foreign_keys: list[ForeignKey] | None = None,
    ):
        if not columns:
            raise CatalogError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns = list(columns)
        self.column_names = [c.name for c in columns]
        # column lookup is case-insensitive, as in SQL
        self._positions = {c.name.upper(): i for i, c in enumerate(columns)}
        if len(self._positions) != len(columns):
            raise CatalogError(f"duplicate column name in table {name!r}")
        for pk_col in primary_key:
            if pk_col.upper() not in self._positions:
                raise CatalogError(
                    f"primary key column {pk_col!r} not in table {name!r}"
                )
        if not primary_key:
            raise CatalogError(f"table {name!r} must declare a primary key")
        self.primary_key = tuple(primary_key)
        self.foreign_keys = list(foreign_keys or [])
        self.indexes: dict[str, IndexDef] = {}

    # -- metadata helpers -------------------------------------------------

    def has_column(self, name: str) -> bool:
        return name.upper() in self._positions

    def column(self, name: str) -> Column:
        try:
            return self.columns[self._positions[name.upper()]]
        except KeyError:
            raise CatalogError(f"no column {name!r} in table {self.name!r}") from None

    def position(self, name: str) -> int:
        try:
            return self._positions[name.upper()]
        except KeyError:
            raise CatalogError(f"no column {name!r} in table {self.name!r}") from None

    @property
    def pk_positions(self) -> tuple[int, ...]:
        return tuple(self._positions[c.upper()] for c in self.primary_key)

    def pk_of(self, values: tuple) -> tuple:
        """Extract the primary-key tuple from a full row tuple."""
        return tuple(values[i] for i in self.pk_positions)

    def add_index(self, index: IndexDef):
        if index.name in self.indexes:
            raise CatalogError(f"duplicate index {index.name!r} on {self.name!r}")
        for col in index.columns:
            if not self.has_column(col):
                raise CatalogError(
                    f"index {index.name!r} references unknown column {col!r}"
                )
        self.indexes[index.name] = index

    def composite_primary_key(self) -> bool:
        """True when the primary key spans more than one column.

        The paper makes composite keys a first-class concern: tabenchmark
        changes SUBSCRIBER's key to (s_id, sf_type) and both evaluated DBMSs
        handle lookups on a non-prefix key column poorly.
        """
        return len(self.primary_key) > 1

    def __repr__(self):
        return f"Table({self.name}, cols={len(self.columns)}, pk={self.primary_key})"


class Catalog:
    """Registry of tables the binder resolves against."""

    def __init__(self):
        self._tables: dict[str, Table] = {}

    def create_table(self, table: Table):
        key = table.name.upper()
        if key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table

    def drop_table(self, name: str):
        key = name.upper()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.upper()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        return name.upper() in self._tables

    def tables(self) -> list[Table]:
        return list(self._tables.values())

    def table_names(self) -> list[str]:
        return [t.name for t in self._tables.values()]

    # -- summary statistics used by the Table II bench --------------------

    def summary(self) -> dict:
        """Counts of tables, columns and secondary indexes (Table II inputs)."""
        tables = self.tables()
        return {
            "tables": len(tables),
            "columns": sum(len(t.columns) for t in tables),
            "indexes": sum(len(t.indexes) for t in tables),
        }


@dataclass
class SchemaVariant:
    """One of the two shipped schema flavours.

    The paper ships every schema in two versions — with and without foreign
    keys — because MemSQL does not support foreign keys.  ``build(catalog)``
    creates the tables in a catalog.
    """

    name: str
    with_foreign_keys: bool
    tables: list[Table] = field(default_factory=list)

    def build(self, catalog: Catalog):
        for table in self.tables:
            catalog.create_table(table)
