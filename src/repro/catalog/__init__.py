"""Relational catalog: column types, table metadata, schema registry."""

from repro.catalog.schema import (
    Catalog,
    Column,
    ForeignKey,
    IndexDef,
    SchemaVariant,
    Table,
)
from repro.catalog.types import (
    BIGINT,
    CHAR,
    DECIMAL,
    FLOAT,
    INT,
    TIMESTAMP,
    VARCHAR,
    SQLType,
    type_from_name,
)

__all__ = [
    "Catalog",
    "Column",
    "ForeignKey",
    "IndexDef",
    "SchemaVariant",
    "Table",
    "SQLType",
    "type_from_name",
    "INT",
    "BIGINT",
    "FLOAT",
    "TIMESTAMP",
    "DECIMAL",
    "VARCHAR",
    "CHAR",
]
