"""Column type system for the embedded relational engine.

Types are deliberately small: the four benchmark schemas (TPC-C, SmallBank,
TATP, and the CH-benCHmark stitch additions) only need integers, floats,
decimals, fixed/variable strings and timestamps.  Values are stored as plain
Python objects; each type knows how to validate and coerce a value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError


@dataclass(frozen=True)
class SQLType:
    """Base class for column types."""

    name: str = "ANY"

    def validate(self, value):
        """Coerce ``value`` to this type, raising ``ExecutionError`` on failure.

        ``None`` is always legal here; NOT NULL enforcement happens at the
        constraint layer, not the type layer.
        """
        return value

    def __str__(self):  # pragma: no cover - repr convenience
        return self.name


@dataclass(frozen=True)
class IntegerType(SQLType):
    name: str = "INT"

    def validate(self, value):
        if value is None:
            return None
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError as exc:
                raise ExecutionError(f"cannot coerce {value!r} to INT") from exc
        raise ExecutionError(f"cannot coerce {value!r} to INT")


@dataclass(frozen=True)
class BigIntType(IntegerType):
    name: str = "BIGINT"


@dataclass(frozen=True)
class FloatType(SQLType):
    name: str = "FLOAT"

    def validate(self, value):
        if value is None:
            return None
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError as exc:
                raise ExecutionError(f"cannot coerce {value!r} to FLOAT") from exc
        raise ExecutionError(f"cannot coerce {value!r} to FLOAT")


@dataclass(frozen=True)
class DecimalType(FloatType):
    """DECIMAL(p, s) stored as float — precision tracking is not needed for
    benchmarking, but the declaration shape is kept for DDL fidelity."""

    name: str = "DECIMAL"
    precision: int = 12
    scale: int = 2


@dataclass(frozen=True)
class VarcharType(SQLType):
    name: str = "VARCHAR"
    length: int = 255

    def validate(self, value):
        if value is None:
            return None
        if not isinstance(value, str):
            value = str(value)
        if len(value) > self.length:
            raise ExecutionError(
                f"value of length {len(value)} exceeds {self.name}({self.length})"
            )
        return value

    def __str__(self):
        return f"{self.name}({self.length})"


@dataclass(frozen=True)
class CharType(VarcharType):
    name: str = "CHAR"


@dataclass(frozen=True)
class TimestampType(SQLType):
    """Timestamps are floats (seconds since an arbitrary epoch): the simulator
    owns the clock, so there is no reason to round-trip through datetime."""

    name: str = "TIMESTAMP"

    def validate(self, value):
        if value is None:
            return None
        if isinstance(value, (int, float)):
            return float(value)
        raise ExecutionError(f"cannot coerce {value!r} to TIMESTAMP")


INT = IntegerType()
BIGINT = BigIntType()
FLOAT = FloatType()
TIMESTAMP = TimestampType()


def DECIMAL(precision: int = 12, scale: int = 2) -> DecimalType:
    """Factory matching SQL's ``DECIMAL(p, s)`` spelling."""
    return DecimalType(precision=precision, scale=scale)


def VARCHAR(length: int) -> VarcharType:
    """Factory matching SQL's ``VARCHAR(n)`` spelling."""
    return VarcharType(length=length)


def CHAR(length: int) -> CharType:
    """Factory matching SQL's ``CHAR(n)`` spelling."""
    return CharType(length=length)


_TYPE_FACTORIES = {
    "INT": lambda args: INT,
    "INTEGER": lambda args: INT,
    "BIGINT": lambda args: BIGINT,
    "SMALLINT": lambda args: INT,
    "FLOAT": lambda args: FLOAT,
    "DOUBLE": lambda args: FLOAT,
    "REAL": lambda args: FLOAT,
    "DECIMAL": lambda args: DECIMAL(*(args or (12, 2))),
    "NUMERIC": lambda args: DECIMAL(*(args or (12, 2))),
    "VARCHAR": lambda args: VARCHAR(args[0] if args else 255),
    "CHAR": lambda args: CHAR(args[0] if args else 1),
    "TEXT": lambda args: VARCHAR(65535),
    "TIMESTAMP": lambda args: TIMESTAMP,
    "DATETIME": lambda args: TIMESTAMP,
}


def type_from_name(name: str, args: tuple[int, ...] | None = None) -> SQLType:
    """Resolve a SQL type name (as written in DDL) to a type object."""
    factory = _TYPE_FACTORIES.get(name.upper())
    if factory is None:
        raise ExecutionError(f"unknown SQL type {name!r}")
    return factory(args)
