"""Deterministic failpoints: named fault-injection hooks on the hot seams.

A *failpoint* is a named place in the engine where a fault can be made to
happen on demand: the WAL append path, the replica apply loop, the
compaction merge, a pool task, the 2PC prepare step, a columnar scan.
Production code calls ``registry.fire(name)`` at the seam; the call is a
no-op unless a test (or the chaos benchmark arm) has *armed* that name.

Arming is deterministic two ways:

* **count-based** (``on_hits={3}``) — fire on exactly those hit ordinals.
  Hit numbering is global per failpoint and survives re-arming only via
  ``reset_counters()``.  This is the mode the crash-sweep tests use: it
  is reproducible even under real pool threads, because which *hit*
  fires does not depend on thread interleaving of *other* failpoints.
* **probability-based** (``probability=0.05``) — each hit draws from a
  per-failpoint ``Random(f"{seed}:{name}")``.  Deterministic whenever the
  hit order is deterministic, which the cooperative session server
  (``workers=0``) guarantees; the chaos benchmark runs in that mode.

Counters (hits / triggers / recoveries) are kept per failpoint and
surfaced through ``ExecStats`` so fault activity shows up in RunReport
and ``BENCH_fig11.json["chaos"]`` rather than vanishing into logs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from random import Random

from repro.errors import InjectedFaultError

#: The catalogue of failpoints the engine is instrumented with.  Arming a
#: name outside this set is a programming error — it would silently never
#: fire — so ``arm()`` validates against it.
FAILPOINT_NAMES = (
    "wal.append",      # torn write: corrupted tail record + raise
    "wal.read",        # transient read failure on the replication feed
    "replica.apply",   # crash mid-apply on the columnar replica
    "compact.merge",   # crash mid-compaction (before publish)
    "pool.task",       # partition task failure before execution
    "pool.background", # background compaction failure
    "txn.prepare",     # participant failure at 2PC prepare
    "replica.scan",    # replica cannot serve a columnar scan
)


@dataclass
class _Armed:
    """One armed failpoint's trigger rule."""

    probability: float = 0.0
    on_hits: frozenset[int] = frozenset()
    always: bool = False
    max_triggers: int | None = None
    error: type[Exception] | None = None  # default: InjectedFaultError
    rng: Random | None = None


@dataclass
class FailpointStats:
    """Per-failpoint counters, all monotone."""

    hits: int = 0        # times the seam was reached while armed
    triggers: int = 0    # times the fault actually fired
    recoveries: int = 0  # times a caller recovered from this fault

    def as_dict(self) -> dict:
        return {"hits": self.hits, "triggers": self.triggers,
                "recoveries": self.recoveries}


@dataclass
class _Scope:
    """Context manager that disarms the named failpoints on exit."""

    registry: FailpointRegistry
    names: tuple[str, ...] = ()

    def __enter__(self) -> FailpointRegistry:
        return self.registry

    def __exit__(self, *exc):
        for name in self.names:
            self.registry.disarm(name)
        return False


class FailpointRegistry:
    """Named, seeded, deterministically-triggered failpoints.

    One registry is threaded through a ``Database`` and shared by every
    layer (WAL, replica, pool, txn manager, executor).  The unarmed fast
    path is a single attribute read — a database that never arms anything
    pays nothing measurable.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._armed: dict[str, _Armed] = {}
        self._stats: dict[str, FailpointStats] = {}
        self._lock = threading.Lock()
        self._any_armed = False  # fast-path guard, read without the lock

    # -- arming ----------------------------------------------------------

    def arm(self, name: str, *, probability: float = 0.0,
            on_hits=(), always: bool = False,
            max_triggers: int | None = None,
            error: type[Exception] | None = None) -> _Scope:
        """Arm ``name``; returns a context manager that disarms on exit.

        Exactly one trigger rule should be given: ``always=True`` (every
        hit fires), ``on_hits={k, ...}`` (fire on those 1-based hit
        ordinals), or ``probability=p`` (seeded per-failpoint draw).
        ``max_triggers`` caps total firings; ``error`` overrides the
        exception type (must accept the failpoint name as first arg or
        no args — see ``fire``).
        """
        if name not in FAILPOINT_NAMES:
            raise ValueError(f"unknown failpoint {name!r}; catalogue: "
                             f"{', '.join(FAILPOINT_NAMES)}")
        rule = _Armed(
            probability=probability,
            on_hits=frozenset(on_hits),
            always=always,
            max_triggers=max_triggers,
            error=error,
            rng=Random(f"{self.seed}:{name}") if probability else None,
        )
        with self._lock:
            self._armed[name] = rule
            self._any_armed = True
        return _Scope(self, (name,))

    def disarm(self, name: str):
        with self._lock:
            self._armed.pop(name, None)
            self._any_armed = bool(self._armed)

    def disarm_all(self):
        with self._lock:
            self._armed.clear()
            self._any_armed = False

    def armed(self, name: str) -> bool:
        return name in self._armed

    # -- firing ----------------------------------------------------------

    def evaluate(self, name: str) -> bool:
        """Record a hit; return True when the fault should fire.

        Use this (instead of ``fire``) at seams that simulate the fault
        themselves — e.g. the WAL append path writes a *corrupted* record
        before raising, which a plain exception cannot express.
        """
        if not self._any_armed:
            return False
        with self._lock:
            rule = self._armed.get(name)
            if rule is None:
                return False
            stats = self._stats.setdefault(name, FailpointStats())
            stats.hits += 1
            if rule.max_triggers is not None \
                    and stats.triggers >= rule.max_triggers:
                return False
            should = (
                rule.always
                or stats.hits in rule.on_hits
                or (rule.rng is not None
                    and rule.rng.random() < rule.probability)
            )
            if should:
                stats.triggers += 1
            return should

    def fire(self, name: str):
        """Raise the armed error if the fault should fire; else no-op."""
        if not self._any_armed:
            return
        if self.evaluate(name):
            with self._lock:
                rule = self._armed.get(name)
            error = rule.error if rule is not None and rule.error else None
            if error is None:
                raise InjectedFaultError(name)
            try:
                raise error(name)
            except TypeError:
                raise error() from None

    def record_recovery(self, name: str):
        """A caller survived this failpoint's fault (retry / degrade)."""
        with self._lock:
            self._stats.setdefault(name, FailpointStats()).recoveries += 1

    # -- observability ---------------------------------------------------

    def stats(self, name: str) -> FailpointStats:
        with self._lock:
            return self._stats.setdefault(name, FailpointStats())

    def triggers_total(self) -> int:
        with self._lock:
            return sum(s.triggers for s in self._stats.values())

    def recoveries_total(self) -> int:
        with self._lock:
            return sum(s.recoveries for s in self._stats.values())

    def snapshot(self) -> dict:
        """``{name: {hits, triggers, recoveries}}`` for every touched name."""
        with self._lock:
            return {name: stats.as_dict()
                    for name, stats in sorted(self._stats.items())}

    def reset_counters(self):
        with self._lock:
            self._stats.clear()
