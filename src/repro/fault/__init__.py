"""Fault injection: deterministic failpoints and graceful degradation.

See ``failpoints.FailpointRegistry`` for the injection substrate and
``breaker.CircuitBreaker`` for the replica-scan degradation policy.
"""

from repro.fault.breaker import CircuitBreaker
from repro.fault.failpoints import (
    FAILPOINT_NAMES,
    FailpointRegistry,
    FailpointStats,
)

__all__ = [
    "FAILPOINT_NAMES",
    "CircuitBreaker",
    "FailpointRegistry",
    "FailpointStats",
]
