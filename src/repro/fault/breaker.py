"""Circuit breaker for the columnar replica's scan path.

The session layer routes analytical statements to the columnar replica.
When the replica throws ``ReplicaUnavailableError`` repeatedly, paying a
failed columnar attempt on *every* statement just adds latency on top of
an already-degraded system — so after ``failure_threshold`` consecutive
failures the breaker *opens* and statements go straight to the row
pipeline (counted as degraded; answers identical).  After
``cooldown_statements`` degraded statements the breaker lets one probe
through (half-open); a successful probe closes it again.

The breaker is deliberately clock-free: state advances per statement, not
per wall-clock second, which keeps behaviour identical under the
deterministic cooperative scheduler and in replayed tests.
"""

from __future__ import annotations

import threading


class CircuitBreaker:
    """Closed → open (after N failures) → half-open probe → closed."""

    def __init__(self, failure_threshold: int = 3,
                 cooldown_statements: int = 8):
        self.failure_threshold = failure_threshold
        self.cooldown_statements = cooldown_statements
        self._consecutive_failures = 0
        self._open = False
        self._cooldown_left = 0
        self._lock = threading.Lock()
        # monotone counters for reports
        self.trips = 0
        self.resets = 0

    @property
    def is_open(self) -> bool:
        return self._open

    def allow(self) -> bool:
        """May this statement try the columnar path?

        While open, consumes one cooldown slot per call; the call that
        drains the cooldown is the half-open probe and is allowed.
        """
        with self._lock:
            if not self._open:
                return True
            if self._cooldown_left > 0:
                self._cooldown_left -= 1
                return False
            return True  # half-open probe

    def record_success(self):
        with self._lock:
            self._consecutive_failures = 0
            if self._open:
                self._open = False
                self.resets += 1

    def record_failure(self):
        with self._lock:
            self._consecutive_failures += 1
            if self._open:
                # failed half-open probe: restart the cooldown
                self._cooldown_left = self.cooldown_statements
            elif self._consecutive_failures >= self.failure_threshold:
                self._open = True
                self._cooldown_left = self.cooldown_statements
                self.trips += 1
