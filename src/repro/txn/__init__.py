"""Transactions: MVCC manager, isolation levels, lock manager."""

from repro.txn.locks import LockManager, LockMode, LockStats
from repro.txn.manager import (
    IsolationLevel,
    Transaction,
    TransactionManager,
    TxnStatus,
)

__all__ = [
    "IsolationLevel",
    "LockManager",
    "LockMode",
    "LockStats",
    "Transaction",
    "TransactionManager",
    "TxnStatus",
]
