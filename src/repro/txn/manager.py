"""Transaction manager: MVCC snapshots, buffered writes, commit validation.

Transactions buffer their writes locally and install them at commit with a
fresh commit timestamp (optimistic concurrency, as in TiDB's default mode):

* ``SNAPSHOT`` / ``REPEATABLE_READ`` — one read timestamp for the whole
  transaction; commit runs first-committer-wins validation over the write
  set and aborts with ``WriteConflictError`` on overlap.
* ``READ_COMMITTED`` — the read timestamp is refreshed at every statement
  (MemSQL only offers this level, per the paper); no first-committer-wins
  validation, conflicts instead surface as lock waits in the simulator.

Reads merge the transaction's own write buffer over the store snapshot, so a
transaction always sees its own effects — crucial for hybrid transactions,
whose embedded real-time query must observe the online statements that
precede it.
"""

from __future__ import annotations

import itertools
import threading
from collections.abc import Iterator
from enum import Enum

from repro.errors import (
    ConnectionStateError,
    IntegrityError,
    WriteConflictError,
)
from repro.storage.rowstore import RowStorage
from repro.storage.wal import LogOp
from repro.txn.locks import LockManager, LockMode


class IsolationLevel(Enum):
    READ_COMMITTED = "read_committed"
    SNAPSHOT = "snapshot"
    REPEATABLE_READ = "repeatable_read"

    @property
    def statement_snapshot(self) -> bool:
        """True when the read timestamp refreshes at each statement."""
        return self is IsolationLevel.READ_COMMITTED

    @property
    def validates_writes(self) -> bool:
        """True when commit runs first-committer-wins validation."""
        return self is not IsolationLevel.READ_COMMITTED


class TxnStatus(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One in-flight transaction.  Obtain via ``TransactionManager.begin``."""

    def __init__(self, manager: "TransactionManager", txn_id: int,
                 start_ts: int, isolation: IsolationLevel):
        self._manager = manager
        self.txn_id = txn_id
        self.start_ts = start_ts
        self.read_ts = start_ts
        self.isolation = isolation
        self.status = TxnStatus.ACTIVE
        self.commit_ts: int | None = None
        # partition ids the commit touched (set at commit; () if read-only)
        self.commit_partitions: tuple[int, ...] = ()
        # (table, pk) -> (values | None, LogOp); insertion order preserved
        self._writes: dict[tuple, tuple] = {}
        self._read_keys: set[tuple] = set()
        self.lock_conflicts: list[int] = []  # txn ids we conflicted with
        self.statements = 0

    @property
    def manager(self) -> "TransactionManager":
        return self._manager

    # -- lifecycle ---------------------------------------------------------

    def _check_active(self):
        if self.status is not TxnStatus.ACTIVE:
            raise ConnectionStateError(
                f"transaction {self.txn_id} is {self.status.value}"
            )

    def statement_begin(self):
        """Per-statement bookkeeping; refreshes the snapshot under RC."""
        self._check_active()
        self.statements += 1
        if self.isolation.statement_snapshot:
            self.read_ts = self._manager.current_ts()

    def commit(self):
        self._manager.commit(self)

    def rollback(self):
        self._manager.rollback(self)

    # -- reads (write buffer merged over MVCC snapshot) ---------------------

    def get(self, table: str, pk: tuple) -> tuple | None:
        self._check_active()
        key = (table.upper(), pk)
        self._read_keys.add(key)
        if key in self._writes:
            return self._writes[key][0]
        return self._manager.storage.store(table).get(pk, self.read_ts)

    def scan(self, table: str) -> Iterator[tuple[tuple, tuple]]:
        self._check_active()
        yield from self._merged(table,
                                self._manager.storage.store(table).scan(self.read_ts))

    def pk_prefix_scan(self, table: str, prefix: tuple) -> Iterator[tuple[tuple, tuple]]:
        self._check_active()
        store = self._manager.storage.store(table)
        base = store.pk_prefix_scan(prefix, self.read_ts)
        n = len(prefix)
        yield from (
            (pk, values) for pk, values in self._merged(table, base, prefix_len=n,
                                                        prefix=prefix)
        )

    def index_candidate_pks(self, table: str, index_name: str, key: tuple) -> set:
        """Primary keys the index suggests; caller re-checks visibility."""
        self._check_active()
        return set(self._manager.storage.store(table).index(index_name).lookup(key))

    def index_range_pks(self, table: str, index_name: str,
                        low: tuple | None, high: tuple | None) -> set:
        self._check_active()
        idx = self._manager.storage.store(table).index(index_name)
        pks: set = set()
        for _key, entry in idx.range_scan(low, high):
            pks |= entry
        return pks

    def local_rows(self, table: str) -> Iterator[tuple[tuple, tuple | None]]:
        """This transaction's buffered writes for ``table`` (pk, values|None).

        Index scans consult this so a transaction's own uncommitted inserts
        are visible to its later statements (hybrid transactions rely on the
        embedded real-time query seeing the online statements before it).
        """
        table_key = table.upper()
        for (tbl, pk), (values, _op) in self._writes.items():
            if tbl == table_key:
                yield pk, values

    def _merged(self, table: str, base: Iterator, prefix_len: int = 0,
                prefix: tuple = ()) -> Iterator[tuple[tuple, tuple]]:
        """Overlay this transaction's buffered writes on a base scan."""
        table_key = table.upper()
        local = {
            key[1]: payload for key, payload in self._writes.items()
            if key[0] == table_key
        }
        if prefix_len:
            local = {pk: payload for pk, payload in local.items()
                     if pk[:prefix_len] == prefix}
        for pk, values in base:
            if pk in local:
                buffered_values, _op = local.pop(pk)
                if buffered_values is not None:
                    yield pk, buffered_values
            else:
                yield pk, values
        for pk, (values, _op) in local.items():
            if values is not None:
                yield pk, values

    # -- writes (buffered) ---------------------------------------------------

    def insert(self, table: str, pk: tuple, values: tuple):
        self._check_active()
        key = (table.upper(), pk)
        if self.get(table, pk) is not None:
            raise IntegrityError(
                f"duplicate primary key {pk} in table {table}"
            )
        self._lock(table.upper(), pk)
        self._writes[key] = (values, LogOp.INSERT)

    def update(self, table: str, pk: tuple, values: tuple):
        self._check_active()
        key = (table.upper(), pk)
        if self.get(table, pk) is None:
            raise IntegrityError(f"update of missing row {pk} in table {table}")
        self._lock(table.upper(), pk)
        op = LogOp.INSERT if key in self._writes and \
            self._writes[key][1] is LogOp.INSERT else LogOp.UPDATE
        self._writes[key] = (values, op)

    def delete(self, table: str, pk: tuple):
        self._check_active()
        key = (table.upper(), pk)
        if self.get(table, pk) is None:
            raise IntegrityError(f"delete of missing row {pk} in table {table}")
        self._lock(table.upper(), pk)
        self._writes[key] = (None, LogOp.DELETE)

    def lock_for_update(self, table: str, pk: tuple):
        """SELECT ... FOR UPDATE: take the write intent without writing."""
        self._check_active()
        self._lock(table.upper(), pk)

    def _lock(self, table: str, pk: tuple):
        conflicts = self._manager.locks.acquire(
            self.txn_id, table, pk, LockMode.EXCLUSIVE
        )
        if conflicts:
            self.lock_conflicts.extend(conflicts)

    # -- introspection --------------------------------------------------------

    @property
    def write_set(self) -> list[tuple]:
        """Ordered ``(table, pk, values, op)`` tuples."""
        return [
            (table, pk, values, op)
            for (table, pk), (values, op) in self._writes.items()
        ]

    @property
    def is_read_only(self) -> bool:
        return not self._writes

    def written_keys(self) -> set[tuple]:
        return set(self._writes)


class TransactionManager:
    """Issues timestamps, runs commit validation, installs write sets."""

    def __init__(self, storage: RowStorage, lock_manager: LockManager | None = None,
                 failpoints=None):
        self.storage = storage
        self.locks = lock_manager or LockManager()
        self.failpoints = failpoints
        self._ts = itertools.count(1)
        self._latest_ts = 0
        # single-allocator invariant: every timestamp comes from _next_ts
        # under this lock.  Sessions multiplexed by the cooperative server
        # never overlap inside it (contention stays 0 there); a real worker
        # pool serialises here, and the monotonicity assertion below would
        # catch any unlocked allocation path racing past it.
        self._ts_lock = threading.Lock()
        self.ts_lock_contention = 0
        self._txn_ids = itertools.count(1)
        self._active: dict[int, Transaction] = {}
        self.commits = 0
        self.aborts = 0
        # commit-path classification: one participant partition -> fast
        # path; several -> two-phase (all logged under one commit_ts)
        self.single_partition_commits = 0
        self.multi_partition_commits = 0
        # two-phase commits aborted at prepare (injected participant
        # failures): the abort is clean — nothing logged, nothing installed
        self.prepare_aborts = 0

    def current_ts(self) -> int:
        return self._latest_ts

    def _next_ts(self) -> int:
        if not self._ts_lock.acquire(blocking=False):
            self.ts_lock_contention += 1
            self._ts_lock.acquire()
        try:
            ts = next(self._ts)
            if ts <= self._latest_ts:
                raise AssertionError(
                    f"timestamp allocation went backwards: {ts} <= "
                    f"{self._latest_ts} (second allocator in play?)"
                )
            self._latest_ts = ts
            return ts
        finally:
            self._ts_lock.release()

    def allocate_commit_ts(self) -> int:
        """Allocate a fresh commit timestamp for out-of-band committed
        writes (bulk loaders that bypass per-row transaction machinery)."""
        return self._next_ts()

    def begin(self, isolation: IsolationLevel = IsolationLevel.SNAPSHOT
              ) -> Transaction:
        txn = Transaction(self, next(self._txn_ids), self._latest_ts, isolation)
        self._active[txn.txn_id] = txn
        return txn

    def commit(self, txn: Transaction):
        txn._check_active()
        try:
            if txn.is_read_only:
                txn.status = TxnStatus.COMMITTED
                txn.commit_ts = self._latest_ts
                self.commits += 1
                return
            if txn.isolation.validates_writes:
                self._validate(txn)
            write_set = txn.write_set
            participants = self.storage.partitions_touched(write_set)
            if len(participants) > 1 and self.failpoints is not None:
                # 2PC prepare: a participant that fails here vetoes the
                # commit before any timestamp is allocated or any record
                # logged — the abort is total, never partial.
                try:
                    self.failpoints.fire("txn.prepare")
                except Exception:
                    self.prepare_aborts += 1
                    raise
            commit_ts = self._next_ts()
            # single-partition commits take the fast path; multi-partition
            # commits are two-phase: every participant logs its records
            # under the one shared commit_ts, so the commit is atomic
            # across partitions (all records visible at commit_ts or none)
            self.storage.apply_commit(commit_ts, write_set)
            txn.commit_ts = commit_ts
            txn.commit_partitions = participants
            if len(participants) > 1:
                self.multi_partition_commits += 1
            else:
                self.single_partition_commits += 1
            txn.status = TxnStatus.COMMITTED
            self.commits += 1
        except Exception:
            txn.status = TxnStatus.ABORTED
            self.aborts += 1
            raise
        finally:
            self._finish(txn)

    def rollback(self, txn: Transaction):
        if txn.status is TxnStatus.ACTIVE:
            txn.status = TxnStatus.ABORTED
            self.aborts += 1
            self._finish(txn)

    def _validate(self, txn: Transaction):
        """First-committer-wins: abort if any written row changed since start."""
        for table, pk, _values, op in txn.write_set:
            latest = self.storage.store(table).latest_committed(pk)
            if latest is not None and latest.begin_ts > txn.start_ts:
                if op is LogOp.INSERT and latest.values is None:
                    continue  # concurrent delete then our insert is fine
                raise WriteConflictError(
                    f"write-write conflict on {table}{pk}: committed at "
                    f"{latest.begin_ts} > snapshot {txn.start_ts}"
                )

    def _finish(self, txn: Transaction):
        self.locks.release_all(txn.txn_id)
        self._active.pop(txn.txn_id, None)

    def active_count(self) -> int:
        return len(self._active)

    def oldest_active_ts(self) -> int:
        if not self._active:
            return self._latest_ts
        return min(t.read_ts for t in self._active.values())
