"""Row lock manager with first-class accounting.

The embedded engine runs transactions optimistically (buffered writes,
first-committer-wins validation), so the lock manager's job is twofold:

* track which active transactions hold write intents on which rows, so that
  conflicts between overlapping transactions are *detected* (they surface as
  aborts under snapshot isolation and as lock-wait time in the cluster
  simulator), and
* account every acquisition/conflict, because the paper's Fig. 4 experiment
  measures *lock overhead* (lock samples / total samples, normalised to a
  no-OLAP baseline) to show that a semantically consistent schema exposes
  far more OLTP/OLAP contention than a stitch schema.

Deadlock detection runs a cycle check over the wait-for graph whenever a
conflict edge is recorded.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def conflicts_with(self, other: "LockMode") -> bool:
        return self is LockMode.EXCLUSIVE or other is LockMode.EXCLUSIVE


@dataclass
class LockStats:
    """Counters the Fig. 4 analysis consumes."""

    acquisitions: int = 0
    shared_acquisitions: int = 0
    conflicts: int = 0
    deadlocks: int = 0
    releases: int = 0
    # per-table acquisition counts: which tables are contended
    by_table: dict = field(default_factory=lambda: defaultdict(int))

    def snapshot(self) -> dict:
        return {
            "acquisitions": self.acquisitions,
            "shared_acquisitions": self.shared_acquisitions,
            "conflicts": self.conflicts,
            "deadlocks": self.deadlocks,
            "releases": self.releases,
        }


class LockManager:
    """Tracks row-level lock intents of active transactions."""

    def __init__(self):
        # (table, pk) -> {txn_id: LockMode}
        self._holders: dict[tuple, dict[int, LockMode]] = {}
        # txn_id -> set of (table, pk)
        self._held: dict[int, set] = defaultdict(set)
        # wait-for edges recorded on conflict: waiter -> set(holders)
        self._waits_for: dict[int, set] = defaultdict(set)
        self.stats = LockStats()

    def acquire(self, txn_id: int, table: str, pk: tuple,
                mode: LockMode = LockMode.EXCLUSIVE) -> list[int]:
        """Record a lock intent; return the ids of conflicting holders.

        The caller decides what a conflict means (abort, simulated wait).
        Re-acquisition by the same transaction is a no-op upgrade.
        """
        key = (table, pk)
        holders = self._holders.setdefault(key, {})
        existing = holders.get(txn_id)
        if existing is LockMode.EXCLUSIVE or existing is mode:
            return []
        conflicting = [
            other for other, held_mode in holders.items()
            if other != txn_id and held_mode.conflicts_with(mode)
        ]
        if existing is None:
            holders[txn_id] = mode
        elif mode is LockMode.EXCLUSIVE:
            holders[txn_id] = LockMode.EXCLUSIVE
        self._held[txn_id].add(key)
        self.stats.acquisitions += 1
        if mode is LockMode.SHARED:
            self.stats.shared_acquisitions += 1
        self.stats.by_table[table] += 1
        if conflicting:
            self.stats.conflicts += len(conflicting)
            self._waits_for[txn_id].update(conflicting)
        return conflicting

    def would_deadlock(self, waiter: int) -> bool:
        """Cycle check over the wait-for graph starting from ``waiter``."""
        seen = set()
        stack = [waiter]
        while stack:
            node = stack.pop()
            for holder in self._waits_for.get(node, ()):
                if holder == waiter:
                    self.stats.deadlocks += 1
                    return True
                if holder not in seen:
                    seen.add(holder)
                    stack.append(holder)
        return False

    def holders_of(self, table: str, pk: tuple) -> dict[int, LockMode]:
        return dict(self._holders.get((table, pk), {}))

    def held_by(self, txn_id: int) -> set:
        return set(self._held.get(txn_id, ()))

    def release_all(self, txn_id: int):
        for key in self._held.pop(txn_id, set()):
            holders = self._holders.get(key)
            if holders is not None:
                holders.pop(txn_id, None)
                if not holders:
                    del self._holders[key]
            self.stats.releases += 1
        self._waits_for.pop(txn_id, None)
        for waiters in self._waits_for.values():
            waiters.discard(txn_id)

    def active_lock_count(self) -> int:
        return sum(len(keys) for keys in self._held.values())

    def reset_stats(self):
        self.stats = LockStats()
