"""Admission control: bounded OLTP/OLAP queues in simulated time.

The controller front-ends the engine's node groups: every request asks for
a slot in its class queue before it may execute.  Slots are occupied for
the request's whole simulated residence (admission to completion), so queue
depth is the number of requests genuinely in flight at the current
simulated time.  A separate, tighter bound caps how many *full-scan*
requests may run at once — the policy that keeps analytical floods from
churning the shared buffer pool and queueing commits behind scans.

Deferred requests retry with exponential backoff (the ``Server`` re-enqueues
the session); a request deferred more than ``max_defers`` times is rejected
and the client moves on.  Everything is counted: admissions, deferrals,
rejections, accumulated wait, and the deepest queue observed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass(frozen=True)
class AdmissionPolicy:
    """Slot bounds for the two request classes (None = unbounded)."""

    enabled: bool = True
    oltp_slots: int | None = None
    olap_slots: int | None = 4
    # concurrent full-scan bound, tighter than (and counted inside) the
    # class slots; scans are what flood the shared buffer pool
    max_scan_slots: int | None = 2
    # exponential backoff schedule for deferred requests
    backoff_ms: float = 4.0
    backoff_multiplier: float = 2.0
    backoff_cap_ms: float = 64.0
    # defers after which a request is rejected outright (None = retry
    # forever; the closed-loop client just keeps backing off)
    max_defers: int | None = None

    @staticmethod
    def disabled() -> "AdmissionPolicy":
        return AdmissionPolicy(enabled=False)


@dataclass
class AdmissionStats:
    """Counters for one run of the controller."""

    admitted: dict = field(default_factory=lambda: {"oltp": 0, "olap": 0})
    deferred: dict = field(default_factory=lambda: {"oltp": 0, "olap": 0})
    rejected: dict = field(default_factory=lambda: {"oltp": 0, "olap": 0})
    wait_ms: dict = field(default_factory=lambda: {"oltp": 0.0, "olap": 0.0})
    max_depth: dict = field(default_factory=lambda: {"oltp": 0, "olap": 0})
    scans_admitted: int = 0
    scans_deferred: int = 0

    def as_dict(self) -> dict:
        return {
            "admitted": dict(self.admitted),
            "deferred": dict(self.deferred),
            "rejected": dict(self.rejected),
            "wait_ms": dict(self.wait_ms),
            "max_depth": dict(self.max_depth),
            "scans_admitted": self.scans_admitted,
            "scans_deferred": self.scans_deferred,
        }


@dataclass(frozen=True)
class Ticket:
    """Proof of admission; hand back to ``occupy`` with the completion."""

    queue: str
    scan: bool


class AdmissionController:
    """Slot accounting over simulated time (no threads, no real clocks)."""

    def __init__(self, policy: AdmissionPolicy | None = None):
        self.policy = policy or AdmissionPolicy()
        # per-queue heaps of completion times of in-flight requests
        self._busy: dict[str, list[float]] = {"oltp": [], "olap": []}
        self._scans: list[float] = []
        self.stats = AdmissionStats()

    # -- queue state ---------------------------------------------------------

    @staticmethod
    def queue_of(kind: str) -> str:
        """Request class -> queue: hybrids ride the transactional queue."""
        return "olap" if kind == "olap" else "oltp"

    def _expire(self, now: float):
        for heap in (*self._busy.values(), self._scans):
            while heap and heap[0] <= now:
                heapq.heappop(heap)

    def depth(self, queue: str, now: float) -> int:
        """Requests of ``queue`` in flight at simulated time ``now``."""
        self._expire(now)
        return len(self._busy[queue])

    def scans_in_flight(self, now: float) -> int:
        self._expire(now)
        return len(self._scans)

    # -- admission protocol ----------------------------------------------------

    def request(self, kind: str, now: float, scan: bool = False
                ) -> Ticket | None:
        """Ask to run now; a Ticket admits, None defers (retry later).

        ``scan`` marks requests expected to run a full scan — they consume
        a scan slot on top of their class slot.
        """
        queue = self.queue_of(kind)
        self._expire(now)
        if self.policy.enabled:
            slots = (self.policy.oltp_slots if queue == "oltp"
                     else self.policy.olap_slots)
            if slots is not None and len(self._busy[queue]) >= slots:
                self.stats.deferred[queue] += 1
                if scan:
                    self.stats.scans_deferred += 1
                return None
            if (scan and self.policy.max_scan_slots is not None
                    and len(self._scans) >= self.policy.max_scan_slots):
                self.stats.deferred[queue] += 1
                self.stats.scans_deferred += 1
                return None
        self.stats.admitted[queue] += 1
        if scan:
            self.stats.scans_admitted += 1
        return Ticket(queue, scan)

    def occupy(self, ticket: Ticket, completion: float,
               waited_ms: float = 0.0):
        """Hold the admitted slots until ``completion`` (simulated time)."""
        heapq.heappush(self._busy[ticket.queue], completion)
        if ticket.scan:
            heapq.heappush(self._scans, completion)
        self.stats.wait_ms[ticket.queue] += waited_ms
        depth = len(self._busy[ticket.queue])
        if depth > self.stats.max_depth[ticket.queue]:
            self.stats.max_depth[ticket.queue] = depth

    def reject(self, kind: str):
        """Record a request that exhausted its defer budget."""
        self.stats.rejected[self.queue_of(kind)] += 1

    def backoff_for(self, defers: int, rng) -> float:
        """Backoff before the ``defers``-th retry: capped exponential with
        a small seeded jitter so deferred sessions do not re-arrive in
        lockstep."""
        p = self.policy
        base = min(p.backoff_cap_ms,
                   p.backoff_ms * p.backoff_multiplier ** max(0, defers - 1))
        return base * (0.75 + 0.5 * rng.random())

    def reset(self):
        self._busy = {"oltp": [], "olap": []}
        self._scans = []
        self.stats = AdmissionStats()
