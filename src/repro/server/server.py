"""The session server: deterministic interleaving of many client sessions.

``Server`` owns one shared engine (and through it the one ``Database``) and
multiplexes any number of ``ClientSession``s over it.  Scheduling is
cooperative and runs in *simulated* time: a heap of ``(time, seq, client)``
events interleaves ready sessions deterministically (seeded RNGs, stable
sequence-number tiebreaks), so a run with the same population and seed is
bit-reproducible without real threads — the same execute-then-time design
as the sequential runner, now with a concurrent front end.

Per event the server: picks the client's next transaction, asks the
``AdmissionController`` for a slot (deferred requests back off and retry,
rejected ones are dropped and counted), executes the program logically on
the client's own session, asks the engine for the simulated latency, holds
the admission slot for the request's residence, and schedules the client's
next arrival after completion plus think time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from random import Random

from repro.core.stats import ClassMetrics, LatencyCollector
from repro.engines.base import HTAPCluster
from repro.errors import ConfigError
from repro.server.admission import AdmissionController, AdmissionPolicy
from repro.server.session import ClientSession
from repro.txn.manager import IsolationLevel
from repro.workloads.base import TransactionProfile, Workload, weighted_choice


@dataclass(frozen=True)
class ClientSpec:
    """One client of the mixed-tenant population."""

    name: str
    kind: str                        # "oltp" | "olap" | "hybrid"
    profiles: tuple                  # TransactionProfiles this client draws from
    weights: dict | None = None      # per-name weight overrides
    think_ms: float = 0.0
    isolation: IsolationLevel | None = None


def mixed_population(workload: Workload, oltp_clients: int,
                     olap_clients: int, hybrid_clients: int = 0,
                     oltp_think_ms: float = 0.0,
                     olap_think_ms: float = 0.0,
                     oltp_weights: dict | None = None,
                     olap_weights: dict | None = None) -> list[ClientSpec]:
    """N transactional + M analytical (+ hybrid) clients over one workload."""
    specs: list[ClientSpec] = []
    oltp = tuple(workload.oltp_transactions())
    olap = tuple(workload.analytical_queries())
    hybrid = tuple(workload.hybrid_transactions())
    for i in range(oltp_clients):
        specs.append(ClientSpec(f"oltp-{i}", "oltp", oltp,
                                weights=oltp_weights,
                                think_ms=oltp_think_ms))
    for i in range(olap_clients):
        specs.append(ClientSpec(f"olap-{i}", "olap", olap,
                                weights=olap_weights,
                                think_ms=olap_think_ms))
    for i in range(hybrid_clients):
        specs.append(ClientSpec(f"hybrid-{i}", "hybrid", hybrid))
    if not specs:
        raise ConfigError("empty client population")
    return specs


@dataclass
class ServerReport:
    """Everything measured during one server run."""

    engine: str
    workload: str
    window_ms: float
    clients: int
    admission_enabled: bool
    classes: dict = field(default_factory=dict)          # kind -> ClassMetrics
    per_transaction: dict = field(default_factory=dict)  # name -> collector
    admission: dict = field(default_factory=dict)
    sessions: list = field(default_factory=list)         # per-session dicts
    plan_cache: dict = field(default_factory=dict)
    stream_quanta: int = 0

    def metrics(self, kind: str) -> ClassMetrics:
        return self.classes.setdefault(kind, ClassMetrics())

    def throughput(self, kind: str) -> float:
        if kind not in self.classes:
            return 0.0
        return self.classes[kind].throughput(self.window_ms)

    def latency(self, kind: str):
        if kind not in self.classes:
            return LatencyCollector().summary()
        return self.classes[kind].latency.summary()

    def summary_text(self) -> str:
        lines = [
            f"server engine={self.engine} workload={self.workload} "
            f"clients={self.clients} window={self.window_ms:.0f}ms "
            f"admission={'on' if self.admission_enabled else 'off'}",
        ]
        for kind, metrics in sorted(self.classes.items()):
            summary = metrics.latency.summary()
            lines.append(
                f"  {kind:>7}: attempted={metrics.attempted:<6} "
                f"completed={metrics.completed:<6} "
                f"tput={metrics.throughput(self.window_ms):9.2f}/s "
                f"p50={summary.median:9.2f}ms p99={summary.p99:9.2f}ms "
                f"adm_wait={metrics.admission_wait_ms:9.1f}ms"
            )
        if self.admission:
            adm = self.admission
            lines.append(
                f"  admission: admitted={adm['admitted']} "
                f"deferred={adm['deferred']} rejected={adm['rejected']} "
                f"max_depth={adm['max_depth']} "
                f"scans={adm['scans_admitted']}/"
                f"{adm['scans_admitted'] + adm['scans_deferred']}"
            )
        if self.plan_cache:
            cache = self.plan_cache
            lines.append(
                f"  plan cache: hits={cache['hits']} "
                f"misses={cache['misses']} evictions={cache['evictions']} "
                f"contention={cache['contention']}"
            )
        return "\n".join(lines)


@dataclass
class _ClientState:
    spec: ClientSpec
    session: ClientSession
    rng: Random
    profile: TransactionProfile | None = None
    first_arrival: float = 0.0
    defers: int = 0


class Server:
    """Multiplexes client sessions over one shared engine."""

    def __init__(self, engine: HTAPCluster,
                 policy: AdmissionPolicy | None = None,
                 max_retries: int = 3):
        self.engine = engine
        self.db = engine.db
        self.admission = AdmissionController(policy)
        self.max_retries = max_retries
        self._session_ids = itertools.count(1)
        # learned per-profile scan-ness: seeds the admission scan bound
        # before the first execution, then follows what the profile
        # actually touched
        self._scan_hints: dict[str, bool] = {}

    # -- session lifecycle ----------------------------------------------------

    def open_session(self, kind: str = "oltp",
                     isolation: IsolationLevel | None = None,
                     name: str | None = None) -> ClientSession:
        return ClientSession(self.db, next(self._session_ids), kind,
                             isolation=isolation, name=name)

    # -- scheduling -----------------------------------------------------------

    def _scan_hint(self, profile: TransactionProfile, kind: str) -> bool:
        hint = self._scan_hints.get(profile.name)
        if hint is None:
            return kind == "olap"
        return hint

    def _learn_scan(self, profile: TransactionProfile, stats):
        self._scan_hints[profile.name] = (
            bool(stats.full_scans)
            or sum(stats.rows_columnar.values()) > 0
        )

    def run(self, clients: list[ClientSpec], duration_ms: float,
            warmup_ms: float = 0.0, seed: int = 0,
            workload_name: str = "") -> ServerReport:
        """One measurement run: closed-loop clients over simulated time."""
        if not clients:
            raise ConfigError("empty client population")
        self.engine.reset_sim()
        self.admission.reset()
        self._scan_hints = {}
        cache_base = (self.db.plan_cache_hits, self.db.plan_cache_misses,
                      self.db.plan_cache_evictions,
                      self.db.plan_cache_contention)
        total_ms = warmup_ms + duration_ms
        states = [
            _ClientState(
                spec=spec,
                session=self.open_session(spec.kind, spec.isolation,
                                          name=spec.name),
                rng=Random(f"{seed}:{i}:{spec.name}"),
            )
            for i, spec in enumerate(clients)
        ]
        report = ServerReport(
            engine=self.engine.name,
            workload=workload_name,
            window_ms=duration_ms,
            clients=len(clients),
            admission_enabled=self.admission.policy.enabled,
        )
        seq = itertools.count()
        heap = [(0.0, next(seq), i) for i in range(len(states))]
        heapq.heapify(heap)
        overhead = self.engine.cost.params.admission_overhead
        while heap:
            now, _, idx = heapq.heappop(heap)
            if now >= total_ms:
                continue
            state = states[idx]
            spec = state.spec
            if state.profile is None:
                state.profile = weighted_choice(list(spec.profiles),
                                                state.rng, spec.weights)
                state.first_arrival = now
                state.defers = 0
            profile = state.profile
            scan = self._scan_hint(profile, spec.kind)
            ticket = self.admission.request(spec.kind, now, scan=scan)
            if ticket is None:
                state.defers += 1
                policy = self.admission.policy
                if (policy.max_defers is not None
                        and state.defers > policy.max_defers):
                    self.admission.reject(spec.kind)
                    state.session.stats.rejections += 1
                    if state.first_arrival >= warmup_ms:
                        report.metrics(spec.kind).attempted += 1
                    state.profile = None
                    heapq.heappush(heap, (now + spec.think_ms,
                                          next(seq), idx))
                    continue
                backoff = self.admission.backoff_for(state.defers, state.rng)
                state.session.stats.deferrals += 1
                state.session.stats.backoff_ms += backoff
                heapq.heappush(heap, (now + backoff, next(seq), idx))
                continue
            columnar = (self.engine.route_analytical(now)
                        if spec.kind == "olap" else False)
            work = state.session.run_program(
                profile.name, profile.program, state.rng,
                route_columnar=columnar, max_retries=self.max_retries,
            )
            self._learn_scan(profile, work.combined_stats())
            breakdown = self.engine.account(now, work, columnar)
            admission_wait = now - state.first_arrival
            completion = now + breakdown.total + overhead
            self.admission.occupy(ticket, completion,
                                  waited_ms=admission_wait)
            state.session.stats.admission_wait_ms += admission_wait
            latency = admission_wait + breakdown.total + overhead
            if state.first_arrival >= warmup_ms:
                metrics = report.metrics(spec.kind)
                metrics.attempted += 1
                if work.aborted:
                    metrics.aborted += 1
                elif completion <= total_ms:
                    metrics.completed += 1
                metrics.latency.add(latency)
                metrics.queue_wait_ms += breakdown.queue_wait
                metrics.lock_wait_ms += breakdown.lock_wait
                metrics.service_ms += breakdown.service
                metrics.io_ms += breakdown.io
                metrics.admission_wait_ms += admission_wait
                collector = report.per_transaction.get(profile.name)
                if collector is None:
                    collector = LatencyCollector(profile.name)
                    report.per_transaction[profile.name] = collector
                collector.add(latency)
            state.profile = None
            heapq.heappush(heap, (completion + spec.think_ms,
                                  next(seq), idx))
        report.admission = self.admission.stats.as_dict()
        report.sessions = [
            {"name": s.session.name, "kind": s.spec.kind,
             **s.session.stats.as_dict()}
            for s in states
        ]
        report.stream_quanta = sum(s.session.stats.stream_quanta
                                   for s in states)
        report.plan_cache = {
            "hits": self.db.plan_cache_hits - cache_base[0],
            "misses": self.db.plan_cache_misses - cache_base[1],
            "evictions": self.db.plan_cache_evictions - cache_base[2],
            "contention": self.db.plan_cache_contention - cache_base[3],
        }
        for state in states:
            state.session.close()
        return report


# -- result parity against the sequential runner -----------------------------


class _CapturingSession:
    """Duck-typed workload session that records every statement's rows."""

    def __init__(self, base):
        self._base = base
        self.captured: list = []

    def execute(self, sql: str, params: tuple = ()):
        result = self._base.execute(sql, params)
        self.captured.append((sql, list(getattr(result, "rows", ()))))
        return result

    def query_scalar(self, sql: str, params: tuple = ()):
        return self.execute(sql, params).scalar()


def query_results(session, profiles, seed: int = 0) -> dict:
    """Run each read-only profile once; {name: [(sql, rows), ...]}.

    ``session`` is anything with the workload statement API (a core
    ``Session``-compatible object or a ``ClientSession``); the per-profile
    RNG is derived from the profile name so the same seed issues the same
    parameters regardless of which session executes them — the byte-parity
    contract between the sequential runner and the session server.
    """
    out = {}
    for profile in profiles:
        capture = _CapturingSession(session)
        profile.program(capture, Random(f"{profile.name}:{seed}"))
        out[profile.name] = capture.captured
    return out
