"""Client sessions: long-lived statement pipelines over one shared Database.

A ``ClientSession`` is what the concurrent front end multiplexes: it wraps
one ``db.database.Connection`` for the lifetime of a client, so each session
carries its own MVCC snapshot lifecycle (an open SNAPSHOT transaction keeps
one read timestamp across interleaved statements from other sessions; a
READ_COMMITTED session refreshes its snapshot at every statement), its own
statement pipeline, and its own accumulated ``ExecStats``.

Two APIs coexist:

* the statement API (``begin``/``execute``/``commit``/``rollback``) — what
  an interactive client drives, and what the snapshot-isolation tests
  interleave directly;
* ``run_program`` — one whole workload transaction program executed through
  ``core.session.run_transaction`` (retry-on-abort included), which is what
  the ``Server`` scheduler dispatches.

Sessions never own timing: the ``Server`` assigns simulated latency through
the engine after the logical execution finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.session import run_transaction
from repro.db.database import Database
from repro.sim.work import WorkResult
from repro.sql.planner import SelectPlan
from repro.sql.result import DMLResult, ExecStats, Result
from repro.sql.vectorized import BatchRows
from repro.txn.manager import IsolationLevel


@dataclass
class SessionStats:
    """Everything one session accumulated over its lifetime."""

    transactions: int = 0
    commits: int = 0
    aborts: int = 0
    retries: int = 0
    statements: int = 0
    # admission-control interaction (maintained by the Server)
    deferrals: int = 0
    rejections: int = 0
    backoff_ms: float = 0.0
    admission_wait_ms: float = 0.0
    # partition streams drained by execute_streamed
    stream_quanta: int = 0
    exec: ExecStats = field(default_factory=ExecStats)

    def as_dict(self) -> dict:
        return {
            "transactions": self.transactions,
            "commits": self.commits,
            "aborts": self.aborts,
            "retries": self.retries,
            "statements": self.statements,
            "deferrals": self.deferrals,
            "rejections": self.rejections,
            "backoff_ms": self.backoff_ms,
            "admission_wait_ms": self.admission_wait_ms,
            "stream_quanta": self.stream_quanta,
            "faults_injected": self.exec.faults_injected,
            "faults_recovered": self.exec.faults_recovered,
            "degraded_statements": self.exec.degraded_statements,
        }


class ClientSession:
    """One client's connection, snapshot lifecycle and statistics."""

    def __init__(self, db: Database, session_id: int = 0, kind: str = "oltp",
                 isolation: IsolationLevel | None = None,
                 name: str | None = None):
        self.db = db
        self.session_id = session_id
        self.kind = kind
        self.name = name or f"session-{session_id}"
        self.conn = db.connect(isolation)
        self.stats = SessionStats()
        self._closed = False

    # -- transaction control (statement API) --------------------------------

    @property
    def in_transaction(self) -> bool:
        return self.conn.in_transaction

    @property
    def snapshot_ts(self) -> int | None:
        """Read timestamp of the open transaction (None between them)."""
        txn = self.conn._txn
        return txn.read_ts if txn is not None else None

    def begin(self):
        self.stats.transactions += 1
        return self.conn.begin()

    def commit(self):
        self.conn.commit()
        self.stats.commits += 1

    def rollback(self):
        self.conn.rollback()
        self.stats.aborts += 1

    def execute(self, sql: str, params: tuple = (),
                route_columnar: bool = False) -> Result | DMLResult:
        result = self.conn.execute(sql, params,
                                   route_columnar=route_columnar)
        self.stats.statements += 1
        self.stats.exec.merge(result.stats)
        return result

    def query_scalar(self, sql: str, params: tuple = ()):
        return self.execute(sql, params).scalar()

    # -- partition-parallel statement pipeline -------------------------------

    def execute_streamed(self, sql: str, params: tuple = ()) -> Result:
        """Columnar-routed SELECT drained one partition stream at a time.

        Where the plan's vectorized root preserves the scatter shape
        (``BatchRows.execute_streams``), the session pulls each partition's
        row stream as its own quantum — the cooperative-scheduler shape of
        partition-parallel execution.  Ineligible statements (DML, FOR
        UPDATE, row-pipeline-only plans, missing replica tables) fall back
        to ``execute`` unchanged, so results are always identical to the
        row-at-a-time path.
        """
        plan, cache_hit, evicted, contended = self.db._prepare(sql)
        root = getattr(plan, "vectorized_root", None)
        if (not isinstance(plan, SelectPlan) or plan.for_update is not None
                or not isinstance(root, BatchRows)
                or self.db.columnar is None
                or not all(self.db.columnar.has_table(t)
                           for t in plan.vectorized_tables)):
            return self.execute(sql, params, route_columnar=True)
        autocommit = not self.conn.in_transaction
        if autocommit:
            self.conn.begin()
        txn = self.conn._txn
        txn.statement_begin()
        ctx = self.db.executor._context(txn, tuple(params),
                                        route_columnar=True)
        ctx.stats.vectorized = True
        ctx.stats.vectorized_statements = 1
        rows: list = []
        quanta = 0
        try:
            if ctx.pool is not None:
                # real scatter-gather: drain every partition stream on the
                # worker pool, gather row lists in partition order (same
                # rows, same order as the quantum-at-a-time loop)
                streams = list(root.execute_streams(ctx))
                quanta = len(streams)
                tasks = [(pid, lambda s=stream: list(s))
                         for pid, stream in enumerate(streams)]
                for _pid, drained in ctx.pool.scatter_ordered(ctx, tasks):
                    rows.extend(drained)
            else:
                for stream in root.execute_streams(ctx):
                    rows.extend(stream)
                    quanta += 1
        except Exception:
            if autocommit:
                self.conn.rollback()
            raise
        ctx.stats.rows_returned = len(rows)
        if cache_hit:
            ctx.stats.plan_cache_hits += 1
        else:
            ctx.stats.plan_cache_misses += 1
        ctx.stats.plan_cache_evictions += evicted
        ctx.stats.plan_cache_contention += contended
        if autocommit:
            self.conn.commit()
        result = Result(plan.columns, rows, ctx.stats)
        self.stats.statements += 1
        self.stats.stream_quanta += quanta
        self.stats.exec.merge(ctx.stats)
        return result

    # -- whole-transaction dispatch (what the Server schedules) --------------

    def run_program(self, name: str, program, rng,
                    route_columnar: bool = False,
                    max_retries: int = 3) -> WorkResult:
        """Execute one workload transaction program on this session."""
        work = run_transaction(self.conn, self.kind, name, program, rng,
                               route_columnar=route_columnar,
                               max_retries=max_retries)
        self.stats.transactions += 1
        if work.aborted:
            self.stats.aborts += 1
        else:
            self.stats.commits += 1
        self.stats.retries += work.retries
        self.stats.statements += (work.n_statements
                                  + work.n_realtime_statements)
        self.stats.exec.merge(work.combined_stats())
        return work

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        if not self._closed:
            self.conn.close()
            self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, exc_type, _exc, _tb):
        if exc_type is not None and self.conn.in_transaction:
            self.rollback()
        self.close()
        return False
