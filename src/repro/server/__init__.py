"""Concurrent front end: sessions, admission control, the session server.

Turns the harness from "benchmark runner" into "system under load": many
long-lived ``ClientSession``s (each with its own MVCC snapshot lifecycle
and statistics) are multiplexed over one shared ``Database`` by a
``Server`` whose cooperative scheduler interleaves them deterministically
in simulated time, behind an ``AdmissionController`` that bounds how much
of each request class — and how many full scans — may be in flight at
once.
"""

from repro.server.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionStats,
    Ticket,
)
from repro.server.server import (
    ClientSpec,
    Server,
    ServerReport,
    mixed_population,
    query_results,
)
from repro.server.session import ClientSession, SessionStats

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionStats",
    "Ticket",
    "ClientSession",
    "SessionStats",
    "ClientSpec",
    "Server",
    "ServerReport",
    "mixed_population",
    "query_results",
]
