"""repro — a full reproduction of OLxPBench (ICDE 2022).

Layers, bottom-up:

* ``repro.catalog`` / ``repro.storage`` / ``repro.txn`` / ``repro.sql`` /
  ``repro.db`` — an embedded relational engine (MVCC row store, columnar
  replica, SQL front end).
* ``repro.sim`` — discrete-event cluster simulator and per-engine cost
  models; all benchmark timings are simulated, not wall-clock.
* ``repro.engines`` — TiDB-like, MemSQL-like and OceanBase-like HTAP
  clusters built on the two layers above.
* ``repro.core`` — the OLxPBench framework: config, agents, open/closed-loop
  generators, hybrid transactions, statistics, reports.
* ``repro.workloads`` — subenchmark, fibenchmark, tabenchmark and the
  CH-benCHmark baseline.
* ``repro.analysis`` — Little's-law, lock-overhead and interference tools.
"""

__version__ = "1.0.0"

from repro.db import Database
from repro.errors import ReproError

__all__ = ["Database", "ReproError", "__version__"]
