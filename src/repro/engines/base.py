"""Base class for simulated HTAP clusters.

An engine owns:

* one embedded ``Database`` (the logical state shared by every node — a
  deliberate simplification: replication correctness is not under test,
  replication *timing* is modelled by ``ReplicationState``);
* node groups (FIFO multi-core queues) and the routing policy that picks
  which group serves each request class;
* a cost model translating execution statistics into service demand;
* a buffer pool on the row-store group and a lock table for simulated
  row-lock waits.

``account(arrival_ms, work)`` is the single timing entry point: it advances
replication, routes, queues, applies lock waits and buffer-pool IO, and
returns a ``LatencyBreakdown``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db import Database
from repro.sim.cluster import (
    BufferPoolModel,
    LatencyBreakdown,
    LockTable,
    NodeGroup,
    ReplicationState,
)
from repro.sim.costmodel import CostModel, CostParams
from repro.sim.work import WorkResult
from repro.storage.bufferpool import BufferPool
from repro.txn.manager import IsolationLevel

# routing probe: a bare transactional WorkResult, used to ask subclasses
# which node group serves OLTP without running anything
_OLTP_PROBE = WorkResult(kind="oltp", name="__probe__")


@dataclass
class EngineInfo:
    """Descriptive metadata surfaced in reports."""

    name: str
    nodes: int
    cores_per_node: int
    isolation: IsolationLevel
    supports_foreign_keys: bool
    has_columnar_store: bool


class HTAPCluster:
    """Common machinery for the simulated engines."""

    name = "abstract"
    supports_foreign_keys = True
    has_columnar_store = False
    default_isolation = IsolationLevel.SNAPSHOT

    def __init__(self, nodes: int = 4, cores_per_node: int = 8,
                 cost_params: CostParams | None = None,
                 buffer_pool_pages: int = 512,
                 rows_per_page: int = 64,
                 replication_apply_rate: float | None = None,
                 partitions: int | None = None,
                 workers: int = 0):
        if nodes < 2:
            raise ValueError("a distributed cluster needs at least 2 nodes")
        self.nodes = nodes
        self.cores_per_node = cores_per_node
        # one hash partition per node by default: growing the cluster
        # redistributes data (TiDB regions / OceanBase tablets), it does
        # not just add compute
        self.partitions = partitions if partitions is not None else nodes
        # workers > 0 backs scatter-gather with a real thread pool (0 is
        # the sequential baseline); the simulated parallelism model then
        # caps fan-out at the measured pool width
        self.workers = workers
        self.db = Database(
            supports_foreign_keys=self.supports_foreign_keys,
            with_columnar=self.has_columnar_store,
            default_isolation=self.default_isolation,
            partitions=self.partitions,
            workers=workers,
        )
        self.cost = CostModel(self._scaled_params(cost_params
                                                  or self.default_costs()))
        self.groups: dict[str, NodeGroup] = self._build_groups()
        self.locks = LockTable()
        self.buffer = BufferPoolModel(BufferPool(buffer_pool_pages,
                                                 rows_per_page))
        self.replication = (
            ReplicationState(replication_apply_rate)
            if replication_apply_rate is not None else None
        )
        self.now_ms = 0.0
        # while a pool-flooding scan is in flight the shared row store's
        # cache churns: point reads arriving before this time all miss;
        # after the scan completes the working set takes a while to
        # re-stabilise (cache refill churn)
        self._flood_until = 0.0
        self.flood_recovery_ms = 800.0

    # -- subclass hooks -------------------------------------------------------

    def default_costs(self) -> CostParams:  # pragma: no cover - abstract
        raise NotImplementedError

    def _build_groups(self) -> dict[str, NodeGroup]:  # pragma: no cover
        raise NotImplementedError

    def _target_group(self, work: WorkResult, columnar: bool) -> NodeGroup:
        raise NotImplementedError  # pragma: no cover

    def _scaled_params(self, params: CostParams) -> CostParams:
        """Apply the cluster-size coordination penalty (Fig. 10 mechanism)."""
        return params.scaled(self.scaling_factor())

    def scaling_factor(self) -> float:
        """Coordination overhead multiplier as the cluster grows past 4 nodes.

        Subclasses override the coefficient: the paper finds TiDB's OLTP
        latency more than doubles from 4 to 16 nodes while OceanBase pays
        about 20%.
        """
        import math

        if self.nodes <= 4:
            return 1.0
        return 1.0 + self._scaling_coefficient() * math.log2(self.nodes / 4)

    def _scaling_coefficient(self) -> float:
        return 0.25

    # -- routing ---------------------------------------------------------------

    def route_analytical(self, arrival_ms: float) -> bool:
        """Should an analytical query arriving now use the columnar replica?

        Default: engines without a columnar store never route there.
        """
        return False

    # -- info ---------------------------------------------------------------------

    def info(self) -> EngineInfo:
        return EngineInfo(
            name=self.name,
            nodes=self.nodes,
            cores_per_node=self.cores_per_node,
            isolation=self.default_isolation,
            supports_foreign_keys=self.supports_foreign_keys,
            has_columnar_store=self.has_columnar_store,
        )

    # -- partition placement ----------------------------------------------------

    def oltp_nodes(self) -> int:
        """Nodes of the group that serves transactional requests."""
        group = self._target_group(_OLTP_PROBE, columnar=False)
        return group.nodes

    def partition_node(self, pid: int) -> int:
        """Node (within the transactional group) hosting a partition.

        Partitions map round-robin across the group's nodes, so a
        multi-partition commit touching partitions on distinct nodes pays
        distributed-commit coordination.
        """
        return pid % self.oltp_nodes()

    def partition_placement(self) -> dict[int, int]:
        """Partition id -> node index, for reports and tests."""
        return {pid: self.partition_node(pid)
                for pid in range(self.partitions)}

    def commit_participant_nodes(self, work: WorkResult) -> int:
        """Distinct transactional nodes involved in the commit."""
        if not work.commit_partitions:
            return 0
        return len({self.partition_node(pid)
                    for pid in work.commit_partitions})

    # -- timing ---------------------------------------------------------------------

    def tick(self, now_ms: float):
        """Advance simulated background work (replication) to ``now_ms``."""
        self.now_ms = max(self.now_ms, now_ms)
        if self.replication is not None:
            self.replication.advance(self.now_ms, self.db.storage.wal_head)
        # keep the logical replica fresh so analytical results are correct;
        # *timing* freshness is governed by ReplicationState
        if self.db.columnar is not None:
            self.db.replicate()
            # ordered compaction is background work on the columnar nodes:
            # each drained merge occupies that group's queue, so heavy
            # write streams delay concurrent analytical queries a little —
            # the delta-tree maintenance cost TiFlash pays
            _segments, rows = self.db.columnar.drain_compaction_stats()
            if rows:
                group = self.groups.get("columnar")
                if group is not None:
                    group.admit(self.now_ms,
                                self.cost.compaction_cost(rows))

    def account(self, arrival_ms: float, work: WorkResult,
                columnar: bool = False) -> LatencyBreakdown:
        """Assign simulated latency to one executed transaction."""
        self.tick(arrival_ms)
        breakdown = LatencyBreakdown()

        demand = self.cost.transaction_cost(
            work.stats, work.n_statements, hybrid_context=False,
            columnar_parallelism=self._columnar_parallelism(work, columnar),
            columnar_scan_factor=self._columnar_scan_factor(columnar),
        ).cpu
        if work.realtime_stats is not None:
            demand += self.cost.transaction_cost(
                work.realtime_stats, work.n_realtime_statements,
                hybrid_context=True,
            ).cpu

        io_ms, flooded = self._buffer_pool_io(work, columnar)
        hops = self._network_hops(work, columnar)
        network = self.cost.network_cost(hops)

        group = self._target_group(work, columnar)
        start_estimate = group.earliest_start(arrival_ms)
        lock_wait = 0.0
        if work.write_keys:
            lock_wait = self.locks.wait_and_hold(
                work.write_keys, start_estimate, demand + io_ms
            )
        if work.retries:
            demand += work.retries * self.cost.params.abort_penalty
        start, completion = group.admit(
            arrival_ms, demand + io_ms, extra_hold=lock_wait
        )
        if flooded:
            # the scan churns the shared cache for its whole duration plus
            # a recovery window while the working set reloads
            self._flood_until = max(self._flood_until,
                                    completion + self.flood_recovery_ms)

        breakdown.queue_wait = start - arrival_ms
        breakdown.lock_wait = lock_wait
        breakdown.service = demand
        breakdown.io = io_ms
        breakdown.network = network
        return breakdown

    def _buffer_pool_io(self, work: WorkResult,
                        columnar: bool) -> tuple[float, bool]:
        """Charge the shared row-store buffer pool; columnar scans bypass it.

        Returns ``(io_ms, flooded)``.  While an earlier pool-flooding scan is
        still running (``_flood_until``), point reads that would have hit the
        cache miss instead — the sustained-churn effect behind the paper's
        OLTP/OLAP interference measurements.
        """
        point_misses = 0
        scan_misses = 0
        hits = 0
        flooded = False
        stats = work.combined_stats()
        pool = self.buffer.pool
        for table, rows in stats.rows_row_store.items():
            if stats.full_scans.get(table):
                miss, hit, this_flooded = self.buffer.charge_scan(table, rows)
                flooded = flooded or this_flooded
                scan_misses += miss
            else:
                # prefix-scanned rows read sequential pages; the rest are
                # random point probes, one page per row
                prefix_rows = stats.rows_row_prefix.get(table, 0)
                probes = (rows - prefix_rows
                          + pool.rows_to_pages(prefix_rows))
                stores = self.db.storage.stores()
                store = stores.get(table.upper())
                spread = store.row_count if store is not None else rows
                miss, hit = self.buffer.charge_point(table, probes, spread)
                if self.now_ms < self._flood_until:
                    # cache churn turns would-be hits into misses, but a
                    # single request's extra misses are bounded by what its
                    # batched reads actually fetch
                    forced = min(hit, max(0, 64 - miss))
                    miss, hit = miss + forced, hit - forced
                point_misses += miss
            hits += hit
        io = self.cost.io_cost(point_misses, hits, scan_misses)
        return io, flooded

    def _columnar_scan_factor(self, columnar: bool) -> float:
        """Measured encoded/plain compression ratio of the columnar replica.

        Columnar-routed requests scan encoded segments (dictionary codes,
        run-length runs, typed arrays), so their per-row scan demand drops
        by the measured byte ratio; row-store-routed requests are unchanged.
        """
        if not columnar or self.db.columnar is None:
            return 1.0
        return self.db.columnar.scan_cost_factor()

    def _columnar_parallelism(self, work: WorkResult, columnar: bool) -> int:
        """Effective scatter-gather fan-out of a columnar-routed request.

        Bounded by the nodes of the serving group: partitions co-hosted on
        one node share its cores, they do not add parallel capacity.
        """
        scatter = work.stats.scatter_partitions
        if not columnar or scatter <= 1:
            return 1
        fanout = min(scatter, self._target_group(work, columnar).nodes)
        if work.stats.pool_workers > 0:
            # the request actually ran on a worker pool: measured pool
            # width caps the effective fan-out the cost model credits
            fanout = min(fanout, work.stats.pool_workers)
        return fanout

    def _network_hops(self, work: WorkResult, columnar: bool) -> int:
        # client -> SQL layer -> storage and back: 2 logical hops, plus one
        # per extra statement round trip, plus one per extra node a
        # multi-partition (two-phase) commit has to coordinate
        participant_nodes = self.commit_participant_nodes(work)
        return (2 + max(0, work.n_statements + work.n_realtime_statements - 1)
                + max(0, participant_nodes - 1))

    # -- lifecycle --------------------------------------------------------------------

    def reset_sim(self):
        """Reset timing state (queues, locks, buffer pool, replication) while
        keeping the loaded data, so successive measurement runs start cold-
        queue but warm-data."""
        for group in self.groups.values():
            group.reset()
        self.locks.reset()
        # fresh buffer pool: runs must not inherit each other's residency
        # (the configured warmup period repopulates the working set)
        self.buffer = BufferPoolModel(
            BufferPool(self.buffer.pool.capacity,
                       self.buffer.pool.rows_per_page))
        self._flood_until = 0.0
        if self.db.columnar is not None:
            # merges done while loading belong to no measurement run
            self.db.columnar.drain_compaction_stats()
        if self.replication is not None:
            self.replication.reset()
            # replication restarts in sync with the current WAL head
            self.replication.applied = float(self.db.storage.wal_head)
            self.replication._last_advance = 0.0
        self.now_ms = 0.0

    def utilisation(self, horizon_ms: float) -> dict[str, float]:
        return {
            name: group.utilisation(horizon_ms)
            for name, group in self.groups.items()
        }
