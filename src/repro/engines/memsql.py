"""MemSQL-like (SingleStore) cluster.

Mirrors the paper's deployment (§V-A2): aggregator nodes receive queries
and distribute them to leaf nodes, which store data (in-memory row store +
on-disk column store behind a single engine) and execute everything.  The
consequences modelled here, all reported by the paper:

* data processing happens in memory, so per-row costs are low and the
  buffer-pool miss penalty is negligible — MemSQL's peak OLTP throughput is
  ~3x TiDB's;
* one shared engine serves OLTP and OLAP, so analytical queries compete
  directly with online transactions on the leaf cores (the 17.4x latency
  blowups of Fig. 7);
* vertical partitioning turns the relationship queries inside hybrid
  transactions into join storms (``hybrid_join_amplification``), which is
  why the paper measures hybrid latency in the hundreds of seconds;
* only READ COMMITTED isolation, and no foreign-key support (OLxPBench
  ships FK-free schema variants precisely for this).
"""

from __future__ import annotations

from repro.engines.base import HTAPCluster
from repro.sim.cluster import NodeGroup
from repro.sim.costmodel import MEMSQL_COSTS, CostParams
from repro.sim.work import WorkResult
from repro.txn.manager import IsolationLevel


class MemSQLCluster(HTAPCluster):
    """Aggregator/leaf cluster with a single shared storage engine."""

    name = "memsql"
    supports_foreign_keys = False
    has_columnar_store = False
    default_isolation = IsolationLevel.READ_COMMITTED

    def default_costs(self) -> CostParams:
        return MEMSQL_COSTS

    def _scaling_coefficient(self) -> float:
        return 0.35

    def _build_groups(self) -> dict[str, NodeGroup]:
        # one master aggregator + one aggregator + leaves (paper keeps two
        # leaf nodes on the 4-node testbed); aggregators do little compute
        leaf_nodes = max(1, self.nodes - 2)
        return {
            "aggregator": NodeGroup("aggregator", min(2, self.nodes),
                                    self.cores_per_node),
            "leaf": NodeGroup("leaf", leaf_nodes, self.cores_per_node),
        }

    def route_analytical(self, arrival_ms: float) -> bool:
        return False  # single engine: analytics scan the shared store

    def _target_group(self, work: WorkResult, columnar: bool) -> NodeGroup:
        return self.groups["leaf"]

    def _network_hops(self, work: WorkResult, columnar: bool) -> int:
        # client -> aggregator -> leaf adds one hop per statement
        return 1 + super()._network_hops(work, columnar)
