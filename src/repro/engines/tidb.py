"""TiDB-like cluster.

Architecture mirrored from the paper's deployment (§V-A2): a Raft-based
HTAP database whose storage layer couples a row store (TiKV) with a
columnar store (TiFlash) kept consistent through asynchronous log
replication.  Half of the nodes serve the row store (plus the SQL engine),
the other half the columnar store (plus the TiSpark-like analytical
engine).

Routing policy: analytical queries go to the columnar group only when the
replica is fresh enough (replication lag below a threshold); otherwise they
fall back to row-store scans on TiKV — which is exactly how analytical
pressure bleeds into OLTP latency in the paper's TiDB experiments.  Hybrid
transactions always execute on the row store: a transaction needs one
consistent engine for both its online statements and its embedded
real-time query.
"""

from __future__ import annotations

from repro.engines.base import HTAPCluster
from repro.sim.cluster import NodeGroup
from repro.sim.costmodel import TIDB_COSTS, CostParams
from repro.sim.work import WorkResult
from repro.txn.manager import IsolationLevel


class TiDBCluster(HTAPCluster):
    """Row store + columnar replica with async replication (TiKV/TiFlash)."""

    name = "tidb"
    supports_foreign_keys = True
    has_columnar_store = True
    default_isolation = IsolationLevel.REPEATABLE_READ

    def __init__(self, nodes: int = 4, cores_per_node: int = 8,
                 cost_params: CostParams | None = None,
                 freshness_limit: float = 100.0,
                 replication_apply_rate: float = 0.15,
                 **kwargs):
        """``freshness_limit`` is the replication lag (log records) above
        which analytical queries abandon the columnar replica;
        ``replication_apply_rate`` is records applied per simulated ms."""
        self.freshness_limit = freshness_limit
        super().__init__(
            nodes=nodes, cores_per_node=cores_per_node,
            cost_params=cost_params,
            replication_apply_rate=replication_apply_rate,
            **kwargs,
        )

    def default_costs(self) -> CostParams:
        return TIDB_COSTS

    def _scaling_coefficient(self) -> float:
        # the paper measures TiDB OLTP latency more than doubling 4 -> 16
        return 0.55

    def _build_groups(self) -> dict[str, NodeGroup]:
        row_nodes = max(1, self.nodes // 2)
        col_nodes = max(1, self.nodes - row_nodes)
        return {
            "row": NodeGroup("tikv", row_nodes, self.cores_per_node),
            "columnar": NodeGroup("tiflash", col_nodes, self.cores_per_node),
        }

    def route_analytical(self, arrival_ms: float) -> bool:
        self.tick(arrival_ms)
        lag = self.replication.lag(self.db.storage.wal_head)
        return lag <= self.freshness_limit

    def _target_group(self, work: WorkResult, columnar: bool) -> NodeGroup:
        if work.kind == "olap" and columnar:
            return self.groups["columnar"]
        return self.groups["row"]

    def _buffer_pool_io(self, work: WorkResult,
                        columnar: bool) -> tuple[float, bool]:
        if work.kind == "olap" and columnar:
            # TiFlash scans its own columnar segments; the TiKV buffer pool
            # is untouched, which is the isolation benefit the paper credits
            # TiDB's decoupled storage layer with
            return 0.0, False
        return super()._buffer_pool_io(work, columnar)
