"""OceanBase-like cluster.

Shared-nothing: every OBServer is identical and serves both transactional
and analytical requests over the same row-organised storage (no columnar
replica).  Used by the paper's Fig. 10 scalability study, where OceanBase's
OLTP latency grows only ~20% from 4 to 16 nodes (against TiDB's >100%) but
its performance isolation under analytical pressure is worse than TiDB's
(+18% vs +6%) because analytics and transactions share every node.
"""

from __future__ import annotations

from repro.engines.base import HTAPCluster
from repro.sim.cluster import NodeGroup
from repro.sim.costmodel import OCEANBASE_COSTS, CostParams
from repro.sim.work import WorkResult
from repro.txn.manager import IsolationLevel


class OceanBaseCluster(HTAPCluster):
    """Symmetric shared-nothing OBServer pool."""

    name = "oceanbase"
    supports_foreign_keys = True
    has_columnar_store = False
    default_isolation = IsolationLevel.SNAPSHOT

    def default_costs(self) -> CostParams:
        return OCEANBASE_COSTS

    def _scaling_coefficient(self) -> float:
        # the paper: ~20% OLTP latency growth from 4 to 16 nodes
        return 0.10

    def _build_groups(self) -> dict[str, NodeGroup]:
        return {
            "observer": NodeGroup("observer", self.nodes, self.cores_per_node),
        }

    def route_analytical(self, arrival_ms: float) -> bool:
        return False

    def _target_group(self, work: WorkResult, columnar: bool) -> NodeGroup:
        return self.groups["observer"]
