"""Simulated distributed HTAP engines (TiDB-like, MemSQL-like, OceanBase-like)."""

from repro.engines.base import EngineInfo, HTAPCluster
from repro.engines.memsql import MemSQLCluster
from repro.engines.oceanbase import OceanBaseCluster
from repro.engines.tidb import TiDBCluster

ENGINES = {
    "tidb": TiDBCluster,
    "memsql": MemSQLCluster,
    "oceanbase": OceanBaseCluster,
}


def make_engine(name: str, **kwargs) -> HTAPCluster:
    """Instantiate an engine by name (``tidb``/``memsql``/``oceanbase``)."""
    try:
        cls = ENGINES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; choose from {sorted(ENGINES)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "EngineInfo",
    "HTAPCluster",
    "TiDBCluster",
    "MemSQLCluster",
    "OceanBaseCluster",
    "ENGINES",
    "make_engine",
]
